//! Sampling-based campaigns (§III-B, §III-E, §V-C).

use crate::executor::Campaign;
use crate::outcome::{Outcome, OutcomeClass};
use crate::result::FaultDomain;
use sofi_rng::Rng;
use sofi_space::sample::{self, SampleBatch};
use sofi_space::{ClassIndex, Experiment};

/// How samples are drawn from the fault space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SamplingMode {
    /// Uniform over the raw fault space `w` (the textbook procedure of
    /// §III-B). Draws landing on known-benign coordinates are counted
    /// without running experiments; several draws in one class share one
    /// conducted experiment (§III-E done right).
    UniformRaw,
    /// Uniform over the non-benign population `w' ≤ w` — classes drawn
    /// proportionally to their weight (§V-C: sound when only failure
    /// counts are extrapolated).
    WeightedClasses,
    /// **Pitfall 2**: classes drawn uniformly from the pruned experiment
    /// list, ignoring weights. Produces biased estimates; retained so the
    /// bias is demonstrable.
    BiasedPerClass,
}

/// One sampled class outcome: the experiment, how many draws hit it, and
/// what the conducted injection observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampledOutcome {
    /// The class representative that was injected.
    pub experiment: Experiment,
    /// Number of sample draws that landed in this class.
    pub hits: u64,
    /// The observed outcome (shared by all hits of the class).
    pub outcome: Outcome,
}

/// Result of a sampling campaign.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampledResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Which machine component was injected into.
    pub domain: FaultDomain,
    /// How the samples were drawn.
    pub mode: SamplingMode,
    /// Total draws (`N_sampled`).
    pub draws: u64,
    /// The population the draws came from: `w` for [`SamplingMode::UniformRaw`],
    /// `w'` (total experiment-class weight) for the class-based modes.
    /// Extrapolation (Pitfall 3, Corollary 2) multiplies by this.
    pub population: u64,
    /// Draws that hit known-benign coordinates (only nonzero for
    /// [`SamplingMode::UniformRaw`]).
    pub benign_draws: u64,
    /// Outcomes of the classes that were hit.
    pub outcomes: Vec<SampledOutcome>,
}

impl SampledResult {
    /// Number of draws whose class outcome satisfies `pred`.
    pub fn hits_matching(&self, pred: impl Fn(Outcome) -> bool) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| pred(o.outcome))
            .map(|o| o.hits)
            .sum()
    }

    /// Raw sampled failure count `F_sampled` (draws, not experiments).
    pub fn failure_hits(&self) -> u64 {
        self.hits_matching(|o| o.class() == OutcomeClass::Failure)
    }

    /// Number of experiments actually conducted (unique classes hit).
    pub fn experiments_run(&self) -> u64 {
        self.outcomes.len() as u64
    }
}

impl Campaign {
    /// Runs a sampling campaign of `n` draws in the given mode.
    ///
    /// Only one experiment per *hit class* is conducted; every draw counts
    /// toward the estimate, which is exactly the correct combination of
    /// def/use pruning and sampling prescribed in §III-E.
    pub fn run_sampled<R: Rng + ?Sized>(
        &self,
        n: u64,
        mode: SamplingMode,
        rng: &mut R,
    ) -> SampledResult {
        self.run_sampled_in(FaultDomain::Memory, n, mode, rng)
    }

    /// [`Campaign::run_sampled`] with an explicit fault domain
    /// ([`FaultDomain::RegisterFile`] samples the §VI-B register space).
    pub fn run_sampled_in<R: Rng + ?Sized>(
        &self,
        domain: FaultDomain,
        n: u64,
        mode: SamplingMode,
        rng: &mut R,
    ) -> SampledResult {
        let (plan, analysis) = match domain {
            FaultDomain::Memory => (self.plan(), self.analysis()),
            FaultDomain::RegisterFile => (self.register_plan(), self.register_analysis()),
        };
        let batch: SampleBatch = match mode {
            SamplingMode::UniformRaw => {
                let coords = sample::draw_uniform(plan.space, n, rng);
                let index = ClassIndex::new(analysis, plan);
                sample::resolve_draws(&coords, &index)
            }
            SamplingMode::WeightedClasses => sample::draw_weighted_experiments(plan, n, rng),
            SamplingMode::BiasedPerClass => sample::draw_biased_per_class(plan, n, rng),
        };
        let population = match mode {
            SamplingMode::UniformRaw => plan.space.size(),
            SamplingMode::WeightedClasses | SamplingMode::BiasedPerClass => {
                plan.experiment_weight()
            }
        };

        // Conduct one experiment per distinct class hit. Plans built by
        // this workspace assign positional ids, but that is not part of
        // the `InjectionPlan` contract — resolve each id through a real
        // lookup (positional fast path, linear fallback) instead of
        // blindly indexing.
        let mut ids: Vec<u32> = batch.experiment_hits.keys().copied().collect();
        ids.sort_unstable();
        let experiments: Vec<Experiment> = ids
            .iter()
            .map(|&id| {
                plan.experiments
                    .get(id as usize)
                    .filter(|e| e.id == id)
                    .or_else(|| plan.experiments.iter().find(|e| e.id == id))
                    .copied()
                    .unwrap_or_else(|| panic!("sampled class id {id} is not in the plan"))
            })
            .collect();
        let mut results = self.run_experiments_in(domain, &experiments);
        results.sort_by_key(|r| r.experiment.id);
        let outcomes = results
            .into_iter()
            .map(|r| SampledOutcome {
                experiment: r.experiment,
                hits: batch.experiment_hits[&r.experiment.id],
                outcome: r.outcome,
            })
            .collect();

        SampledResult {
            benchmark: self.program().name.clone(),
            domain,
            mode,
            draws: batch.draws,
            population,
            benign_draws: batch.benign_hits,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};
    use sofi_rng::DefaultRng;

    fn hi_campaign() -> Campaign {
        let mut a = Asm::with_name("hi");
        let msg = a.data_space("msg", 2);
        a.li(Reg::R1, 'H' as i32);
        a.sb(Reg::R1, Reg::R0, msg.offset());
        a.li(Reg::R1, 'i' as i32);
        a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
        a.lb(Reg::R2, Reg::R0, msg.offset());
        a.serial_out(Reg::R2);
        a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
        a.serial_out(Reg::R2);
        Campaign::new(&a.build().unwrap()).unwrap()
    }

    #[test]
    fn uniform_sampling_estimates_failure_fraction() {
        let c = hi_campaign();
        let mut rng = DefaultRng::seed_from_u64(11);
        let s = c.run_sampled(20_000, SamplingMode::UniformRaw, &mut rng);
        assert_eq!(s.population, 128);
        let accounted: u64 = s.benign_draws + s.outcomes.iter().map(|o| o.hits).sum::<u64>();
        assert_eq!(accounted, s.draws);
        // True failure fraction is 48/128 = 0.375.
        let est = s.failure_hits() as f64 / s.draws as f64;
        assert!((est - 0.375).abs() < 0.02, "estimate {est}");
        // At most 16 experiments were conducted for 20k draws.
        assert!(s.experiments_run() <= 16);
    }

    #[test]
    fn weighted_sampling_uses_reduced_population() {
        let c = hi_campaign();
        let mut rng = DefaultRng::seed_from_u64(12);
        let s = c.run_sampled(5_000, SamplingMode::WeightedClasses, &mut rng);
        assert_eq!(s.population, 48); // w' = experiment weight only
        assert_eq!(s.benign_draws, 0);
        // Every class of "hi" fails, so all draws are failures.
        assert_eq!(s.failure_hits(), 5_000);
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let c = hi_campaign();
        let s1 = c.run_sampled(
            500,
            SamplingMode::UniformRaw,
            &mut DefaultRng::seed_from_u64(7),
        );
        let s2 = c.run_sampled(
            500,
            SamplingMode::UniformRaw,
            &mut DefaultRng::seed_from_u64(7),
        );
        assert_eq!(s1, s2);
    }

    #[test]
    fn biased_mode_reports_class_population() {
        let c = hi_campaign();
        let mut rng = DefaultRng::seed_from_u64(13);
        let s = c.run_sampled(100, SamplingMode::BiasedPerClass, &mut rng);
        assert_eq!(s.population, 48);
        assert_eq!(s.draws, 100);
    }
}
