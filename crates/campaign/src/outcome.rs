//! Experiment-outcome taxonomy.
//!
//! §II-D of the paper distinguishes eight experiment-outcome types, of
//! which two — "No Effect" and "Detected & Corrected" — are benign. For the
//! paper's analyses everything else is coalesced into a single "Failure"
//! class ([`OutcomeClass`]); the detailed taxonomy is retained because the
//! generalization in §VI-B extrapolates each effective outcome type
//! separately.

use sofi_machine::{RunStatus, Trap};
use sofi_trace::GoldenRun;
use std::fmt;

/// Halt code a hardened program uses to signal "error detected, cannot
/// correct — aborting". Classified as [`Outcome::DetectedUnrecoverable`]:
/// still a failure (the run did not produce its output), but a *detected*
/// one (fail-stop behaviour rather than silent corruption).
pub const ABORT_CODE: u16 = 0xDE;

/// Detailed outcome of one FI experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Outcome {
    /// Output, exit status and detection count match the golden run: the
    /// fault was masked or stayed dormant.
    NoEffect,
    /// Output matches, but the fault-tolerance mechanism reported at least
    /// one correction: benign, the mechanism worked.
    DetectedCorrected,
    /// The run halted cleanly but produced wrong output.
    SilentDataCorruption,
    /// The program detected an uncorrectable error and aborted fail-stop
    /// (halt with [`ABORT_CODE`]).
    DetectedUnrecoverable,
    /// The run halted with an unexpected nonzero exit code.
    AbnormalHalt {
        /// The exit code observed.
        code: u16,
    },
    /// A CPU exception (trap) stopped the machine.
    CpuException(Trap),
    /// The run exceeded its cycle budget.
    Timeout,
    /// The run flooded the serial interface past the configured limit.
    OutputFlood,
}

impl Outcome {
    /// `true` for the two benign outcome types of §II-D.
    pub fn is_benign(self) -> bool {
        matches!(self, Outcome::NoEffect | Outcome::DetectedCorrected)
    }

    /// Coalesces into the paper's two-way classification.
    pub fn class(self) -> OutcomeClass {
        if self.is_benign() {
            OutcomeClass::NoEffect
        } else {
            OutcomeClass::Failure
        }
    }

    /// Classifies a finished experiment run against the golden run.
    ///
    /// `status` must not be `RunStatus::Halted`-pending — i.e. the machine
    /// has stopped or hit its limit.
    pub fn classify(status: RunStatus, serial: &[u8], detects: u64, golden: &GoldenRun) -> Outcome {
        match status {
            RunStatus::Halted { code: 0 } => {
                if serial == golden.serial.as_slice() {
                    if detects > golden.detect_count {
                        Outcome::DetectedCorrected
                    } else {
                        Outcome::NoEffect
                    }
                } else {
                    Outcome::SilentDataCorruption
                }
            }
            RunStatus::Halted { code: ABORT_CODE } => Outcome::DetectedUnrecoverable,
            RunStatus::Halted { code } => Outcome::AbnormalHalt { code },
            RunStatus::Trapped(Trap::SerialOverflow) => Outcome::OutputFlood,
            RunStatus::Trapped(t) => Outcome::CpuException(t),
            RunStatus::CycleLimit => Outcome::Timeout,
        }
    }

    /// All detailed outcome variants that can occur (trap subtypes
    /// collapsed), for table headers and exhaustive accounting.
    pub const KINDS: [&'static str; 8] = [
        "No Effect",
        "Detected & Corrected",
        "SDC",
        "Detected Unrecoverable",
        "Abnormal Halt",
        "CPU Exception",
        "Timeout",
        "Output Flood",
    ];

    /// Index into [`Outcome::KINDS`] for aggregation.
    pub fn kind_index(self) -> usize {
        match self {
            Outcome::NoEffect => 0,
            Outcome::DetectedCorrected => 1,
            Outcome::SilentDataCorruption => 2,
            Outcome::DetectedUnrecoverable => 3,
            Outcome::AbnormalHalt { .. } => 4,
            Outcome::CpuException(_) => 5,
            Outcome::Timeout => 6,
            Outcome::OutputFlood => 7,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::CpuException(t) => write!(f, "CPU Exception ({t})"),
            Outcome::AbnormalHalt { code } => write!(f, "Abnormal Halt (code {code})"),
            other => f.write_str(Self::KINDS[other.kind_index()]),
        }
    }
}

/// The paper's two-way coalescing: benign vs failure (§II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OutcomeClass {
    /// No externally visible effect (includes detected-and-corrected).
    NoEffect,
    /// Any externally visible deviation from the golden run.
    Failure,
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutcomeClass::NoEffect => "No Effect",
            OutcomeClass::Failure => "Failure",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::MemWidth;

    fn golden() -> GoldenRun {
        GoldenRun {
            cycles: 10,
            ram_bits: 8,
            serial: vec![1, 2],
            exit_code: 0,
            detect_count: 0,
            trace: vec![],
            reg_trace: vec![],
        }
    }

    #[test]
    fn classification_matrix() {
        let g = golden();
        let h0 = RunStatus::Halted { code: 0 };
        assert_eq!(Outcome::classify(h0, &[1, 2], 0, &g), Outcome::NoEffect);
        assert_eq!(
            Outcome::classify(h0, &[1, 2], 3, &g),
            Outcome::DetectedCorrected
        );
        assert_eq!(
            Outcome::classify(h0, &[1, 3], 0, &g),
            Outcome::SilentDataCorruption
        );
        assert_eq!(
            Outcome::classify(RunStatus::Halted { code: ABORT_CODE }, &[], 1, &g),
            Outcome::DetectedUnrecoverable
        );
        assert_eq!(
            Outcome::classify(RunStatus::Halted { code: 9 }, &[1, 2], 0, &g),
            Outcome::AbnormalHalt { code: 9 }
        );
        assert_eq!(
            Outcome::classify(RunStatus::CycleLimit, &[1], 0, &g),
            Outcome::Timeout
        );
        assert_eq!(
            Outcome::classify(RunStatus::Trapped(Trap::SerialOverflow), &[1], 0, &g),
            Outcome::OutputFlood
        );
        assert_eq!(
            Outcome::classify(
                RunStatus::Trapped(Trap::Misaligned {
                    addr: 1,
                    width: MemWidth::Word
                }),
                &[],
                0,
                &g
            ),
            Outcome::CpuException(Trap::Misaligned {
                addr: 1,
                width: MemWidth::Word
            })
        );
    }

    #[test]
    fn benign_and_failure_split() {
        assert!(Outcome::NoEffect.is_benign());
        assert!(Outcome::DetectedCorrected.is_benign());
        assert_eq!(Outcome::NoEffect.class(), OutcomeClass::NoEffect);
        for failure in [
            Outcome::SilentDataCorruption,
            Outcome::DetectedUnrecoverable,
            Outcome::AbnormalHalt { code: 1 },
            Outcome::Timeout,
            Outcome::OutputFlood,
        ] {
            assert!(!failure.is_benign());
            assert_eq!(failure.class(), OutcomeClass::Failure);
        }
    }

    #[test]
    fn truncated_output_is_sdc() {
        // A shorter-but-prefix output is still a deviation.
        let g = golden();
        assert_eq!(
            Outcome::classify(RunStatus::Halted { code: 0 }, &[1], 0, &g),
            Outcome::SilentDataCorruption
        );
    }

    #[test]
    fn kind_indices_are_dense() {
        let outcomes = [
            Outcome::NoEffect,
            Outcome::DetectedCorrected,
            Outcome::SilentDataCorruption,
            Outcome::DetectedUnrecoverable,
            Outcome::AbnormalHalt { code: 1 },
            Outcome::CpuException(Trap::SerialOverflow),
            Outcome::Timeout,
            Outcome::OutputFlood,
        ];
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.kind_index(), i);
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(Outcome::NoEffect.to_string(), "No Effect");
        assert_eq!(OutcomeClass::Failure.to_string(), "Failure");
        assert_eq!(
            Outcome::AbnormalHalt { code: 3 }.to_string(),
            "Abnormal Halt (code 3)"
        );
    }
}
