#![warn(missing_docs)]

//! Fault-injection campaign execution.
//!
//! A *campaign* executes an [`sofi_space::InjectionPlan`] against a program:
//! for every planned experiment the machine is forked at the injection
//! cycle, the bit is flipped, execution resumes, and the run's observable
//! behaviour is classified against the golden run (§II-D of the paper).
//!
//! The executor exploits three properties of the setup:
//!
//! * plans are sorted by injection cycle, so a single *pristine* machine is
//!   advanced monotonically and cheaply forked at each injection point
//!   (machine RAM is copy-on-write, so a fork costs a page-table clone,
//!   not a memcpy — and no per-experiment replay from cycle 0);
//! * experiments are independent, so the cycle-sorted list is split into
//!   one contiguous cycle-span chunk per worker thread, each worker
//!   starting from a pristine checkpoint near its chunk — total pristine
//!   forward simulation stays close to the sequential executor's instead
//!   of growing with the thread count;
//! * the machine is deterministic, so a faulted run whose live
//!   architectural state matches a pristine checkpoint has provably the
//!   same remaining behaviour as the golden run — the executor compares
//!   state at each checkpoint crossed and classifies such runs
//!   immediately instead of simulating the tail
//!   ([`CampaignConfig::convergence`], on by default; outcomes stay
//!   bit-identical to the naive replay executor either way).
//!
//! # Examples
//!
//! ```
//! use sofi_isa::{Asm, Reg};
//! use sofi_trace::GoldenRun;
//! use sofi_space::DefUseAnalysis;
//! use sofi_campaign::{Campaign, Outcome};
//!
//! let mut a = Asm::new();
//! let x = a.data_bytes("x", &[7]);
//! a.lb(Reg::R1, Reg::R0, x.offset());
//! a.serial_out(Reg::R1);
//! let program = a.build()?;
//!
//! let campaign = Campaign::new(&program)?;
//! let result = campaign.run_full_defuse();
//! // Flipping any of the 8 bits of `x` before the read corrupts output.
//! assert_eq!(result.results.len(), 8);
//! assert!(result
//!     .results
//!     .iter()
//!     .all(|r| r.outcome == Outcome::SilentDataCorruption));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod burst;
mod config;
mod executor;
mod outcome;
mod result;
pub mod resume;
mod sampling;

pub use burst::BurstSampledResult;
pub use config::CampaignConfig;
pub use executor::{Campaign, ExecutorStats, MemoRecord};
pub use outcome::{Outcome, OutcomeClass, ABORT_CODE};
pub use result::{CampaignResult, ExperimentResult, FaultDomain};
pub use sampling::{SampledOutcome, SampledResult, SamplingMode};
/// Metric names recorded by the executor into [`Campaign::telemetry`],
/// re-exported so downstream consumers (CLI, benches) can look counters
/// up in a [`sofi_telemetry::Snapshot`] without a direct telemetry
/// dependency.
pub use sofi_telemetry::names as telemetry_names;
