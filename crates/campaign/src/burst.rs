//! Multi-bit (burst) fault model — §VIII future work.
//!
//! The paper restricts itself to independent single-bit flips but names
//! "different fault models" as the natural next step. Adjacent multi-bit
//! upsets are the most common non-single-bit DRAM event, so this module
//! adds *burst* campaigns: one fault flips `width` adjacent bits at the
//! same cycle.
//!
//! Def/use equivalence no longer collapses the space (the burst spans
//! several per-bit classes), so burst campaigns are sampling-only, with
//! one conservative optimization retained: a burst whose member bits are
//! *all* known-benign (each overwritten or never read) is benign without
//! an experiment — overwriting or never reading a bit masks it regardless
//! of what happened to its neighbours.

use crate::executor::Campaign;
use crate::outcome::{Outcome, OutcomeClass};
use sofi_machine::Machine;
use sofi_rng::Rng;
use sofi_space::{ClassIndex, ClassRef, FaultCoord};

/// Result of a burst-fault sampling campaign.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BurstSampledResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Bits flipped per fault (1 = the paper's base model).
    pub width: u32,
    /// Total draws.
    pub draws: u64,
    /// Population size: `Δt · (Δm − width + 1)` burst anchor positions.
    pub population: u64,
    /// Draws skipped as a-priori benign (every member bit known-benign).
    pub benign_skips: u64,
    /// Draws whose experiment produced a failure.
    pub failure_draws: u64,
    /// Per-outcome-kind draw counts (indexed as `Outcome::KINDS`).
    pub by_kind: [u64; 8],
}

impl BurstSampledResult {
    /// Extrapolated absolute failure count
    /// (`F_ext = population · failures / draws`, Pitfall 3 Corollary 2 —
    /// it applies to any fault model).
    pub fn extrapolated_failures(&self) -> f64 {
        self.population as f64 * self.failure_draws as f64 / self.draws.max(1) as f64
    }
}

impl Campaign {
    /// Runs a sampling campaign under the burst fault model: each of the
    /// `n` draws picks a uniform (cycle, anchor-bit) coordinate and flips
    /// `width` adjacent memory bits at once.
    ///
    /// `width = 1` reproduces the single-bit model (useful for validating
    /// the estimator against [`Campaign::run_sampled`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds the RAM width, or if the fault
    /// space is empty.
    pub fn run_burst_sampled<R: Rng + ?Sized>(
        &self,
        n: u64,
        width: u32,
        rng: &mut R,
    ) -> BurstSampledResult {
        let space = self.plan().space;
        assert!(width >= 1, "burst width must be at least 1");
        assert!(
            (width as u64) <= space.bits,
            "burst width {width} exceeds RAM ({} bits)",
            space.bits
        );
        let anchors = space.bits - width as u64 + 1;
        let population = space.cycles * anchors;
        assert!(population > 0, "cannot sample an empty fault space");

        // Draw all coordinates first and sort by cycle so a single
        // pristine machine can stream forward (same trick as the plan
        // executor; bursts cannot share experiments, so each non-skipped
        // draw costs one run).
        let index = ClassIndex::new(self.analysis(), self.plan());
        let mut draws: Vec<FaultCoord> = (0..n)
            .map(|_| {
                let flat = rng.gen_range(0..population);
                FaultCoord {
                    cycle: flat / anchors + 1,
                    bit: flat % anchors,
                }
            })
            .collect();
        draws.sort_unstable();

        let budget = self.config().cycle_budget(self.golden().cycles);
        let mut pristine = self.fork_pristine();
        let mut result = BurstSampledResult {
            benchmark: self.program().name.clone(),
            width,
            draws: n,
            population,
            benign_skips: 0,
            failure_draws: 0,
            by_kind: [0; 8],
        };

        for coord in draws {
            // Conservative pruning: skip only if every member bit is
            // known-benign on its own.
            let all_benign = (0..width as u64).all(|d| {
                matches!(
                    index.lookup(FaultCoord {
                        cycle: coord.cycle,
                        bit: coord.bit + d,
                    }),
                    ClassRef::KnownBenign
                )
            });
            if all_benign {
                result.benign_skips += 1;
                result.by_kind[Outcome::NoEffect.kind_index()] += 1;
                continue;
            }
            if pristine.cycle() > coord.pre_injection_cycle() {
                pristine = self.fork_pristine();
            }
            let early = pristine.run_to(coord.pre_injection_cycle());
            assert!(early.is_none(), "draw outlived the program");
            let mut m = pristine.clone();
            for d in 0..width as u64 {
                m.flip_bit(coord.bit + d);
            }
            let status = m.run(budget);
            let outcome = Outcome::classify(status, m.serial(), m.detect_count(), self.golden());
            result.by_kind[outcome.kind_index()] += 1;
            if outcome.class() == OutcomeClass::Failure {
                result.failure_draws += 1;
            }
        }
        result
    }

    /// A fresh machine configured like this campaign's experiment
    /// machines (program, limits, external events).
    pub(crate) fn fork_pristine(&self) -> Machine {
        Machine::with_events(
            self.program(),
            self.config().machine,
            self.events().to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};
    use sofi_rng::DefaultRng;

    fn hi_campaign() -> Campaign {
        let mut a = Asm::with_name("hi");
        let msg = a.data_space("msg", 2);
        a.li(Reg::R1, 'H' as i32);
        a.sb(Reg::R1, Reg::R0, msg.offset());
        a.li(Reg::R1, 'i' as i32);
        a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
        a.lb(Reg::R2, Reg::R0, msg.offset());
        a.serial_out(Reg::R2);
        a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
        a.serial_out(Reg::R2);
        Campaign::new(&a.build().unwrap()).unwrap()
    }

    #[test]
    fn width_one_matches_single_bit_model() {
        let c = hi_campaign();
        let mut rng = DefaultRng::seed_from_u64(31);
        let b = c.run_burst_sampled(20_000, 1, &mut rng);
        assert_eq!(b.population, 128);
        // True failure fraction 48/128 = 0.375.
        let frac = b.failure_draws as f64 / b.draws as f64;
        assert!((frac - 0.375).abs() < 0.02, "fraction {frac}");
        assert!((b.extrapolated_failures() - 48.0).abs() < 3.0);
    }

    #[test]
    fn wider_bursts_fail_at_least_as_often() {
        let c = hi_campaign();
        let mut fractions = Vec::new();
        for width in [1u32, 2, 4, 8] {
            let mut rng = DefaultRng::seed_from_u64(32);
            let b = c.run_burst_sampled(8_000, width, &mut rng);
            fractions.push(b.failure_draws as f64 / b.draws as f64);
        }
        // A wider burst covers a superset of vulnerable windows (minus
        // edge effects); the failure fraction must grow.
        assert!(fractions[1] >= fractions[0] - 0.02, "{fractions:?}");
        assert!(fractions[3] > fractions[0], "{fractions:?}");
    }

    #[test]
    fn accounting_is_complete() {
        let c = hi_campaign();
        let mut rng = DefaultRng::seed_from_u64(33);
        let b = c.run_burst_sampled(2_000, 3, &mut rng);
        assert_eq!(b.by_kind.iter().sum::<u64>(), b.draws);
        assert!(b.benign_skips > 0);
    }

    #[test]
    #[should_panic(expected = "burst width")]
    fn oversized_width_panics() {
        let c = hi_campaign();
        let mut rng = DefaultRng::seed_from_u64(34);
        c.run_burst_sampled(10, 17, &mut rng);
    }
}
