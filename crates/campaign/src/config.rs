//! Campaign configuration.

use sofi_machine::MachineConfig;

/// Execution parameters of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Worker threads. `0` selects the available parallelism.
    pub threads: usize,
    /// Experiment cycle budget as a multiple of the golden runtime. A
    /// faulted run exceeding `golden_cycles * timeout_factor +
    /// timeout_slack` is classified as a timeout.
    pub timeout_factor: u64,
    /// Constant slack added to the cycle budget (covers very short
    /// benchmarks where a small absolute overrun is plausible).
    pub timeout_slack: u64,
    /// Early-terminate faulted runs that converge back onto a pristine
    /// checkpoint (see `Campaign::run_experiments_stats`). Outcomes are
    /// provably identical either way; the knob exists for ablation
    /// benchmarks and for debugging the executor itself.
    pub convergence: bool,
    /// Memoize experiment outcomes by post-injection architectural state
    /// (dynamic fault equivalence): two injections producing the same
    /// machine state at the same cycle must — on a deterministic machine
    /// — have the same outcome, so the second is recorded from the
    /// per-campaign cache without simulating. Lookups and insertions
    /// also happen at every pristine-checkpoint crossing, so runs that
    /// converge *into* an already-explored trajectory hit too. Outcomes
    /// are provably identical either way (oracle:
    /// `tests/memoization_oracle.rs`); the knob exists for ablation and
    /// debugging, like [`CampaignConfig::convergence`].
    pub memoization: bool,
    /// Adaptively disable memo probing per worker shard when it cannot
    /// pay for itself (the cost-model gate). Probing costs one state
    /// digest plus a shared-map lookup at the injection point and at
    /// every checkpoint crossing; it pays back only when enough lookups
    /// hit and each hit skips a long enough simulation tail. The gate
    /// samples both sides at runtime — measured probe latency against
    /// observed hit savings — and switches probing off for the rest of
    /// the shard when the cost clearly dominates (plus an a-priori cut
    /// for programs whose whole runtime is shorter than one probe).
    /// Outcomes are identical either way (the gate only skips lookups,
    /// never invents results); decisions are surfaced per shard in
    /// [`crate::ExecutorStats`] and executor telemetry. On by default;
    /// the knob exists for ablation (`+memo` vs `+memo2` bench columns)
    /// and for tests that pin ungated memo mechanics.
    pub memo_gate: bool,
    /// Record runtime telemetry (`sofi-telemetry` counters, histograms
    /// and phase spans) while the campaign runs. Off by default: the
    /// disabled registry hands out no-op handles, so the executor's hot
    /// paths pay a single never-taken branch per record site.
    pub telemetry: bool,
    /// Machine limits used for experiment runs.
    pub machine: MachineConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            threads: 0,
            timeout_factor: 3,
            timeout_slack: 1_000,
            convergence: true,
            memoization: true,
            memo_gate: true,
            telemetry: false,
            machine: MachineConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// Single-threaded configuration (deterministic result ordering is
    /// guaranteed either way; this avoids thread startup for tiny plans).
    pub fn sequential() -> Self {
        CampaignConfig {
            threads: 1,
            ..Self::default()
        }
    }

    /// The experiment cycle budget for a benchmark of `golden_cycles`.
    pub fn cycle_budget(&self, golden_cycles: u64) -> u64 {
        golden_cycles
            .saturating_mul(self.timeout_factor)
            .saturating_add(self.timeout_slack)
    }

    /// Resolves the worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Packs the configuration into a fixed array of words for wire and
    /// journal serialization (`sofi-serve` job specs). [`CampaignConfig::unpack`]
    /// is the exact inverse; the field order is part of the `sofi-serve`
    /// protocol version, so append new fields rather than reordering
    /// (`telemetry` was appended for protocol version 2,
    /// `machine.block_engine` for version 3, `memo_gate` for version 4).
    pub fn pack(&self) -> [u64; 9] {
        [
            self.threads as u64,
            self.timeout_factor,
            self.timeout_slack,
            u64::from(self.convergence),
            u64::from(self.memoization),
            self.machine.serial_limit as u64,
            u64::from(self.telemetry),
            u64::from(self.machine.block_engine),
            u64::from(self.memo_gate),
        ]
    }

    /// Rebuilds a configuration from [`CampaignConfig::pack`]ed words.
    pub fn unpack(words: [u64; 9]) -> CampaignConfig {
        CampaignConfig {
            threads: words[0] as usize,
            timeout_factor: words[1],
            timeout_slack: words[2],
            convergence: words[3] != 0,
            memoization: words[4] != 0,
            memo_gate: words[8] != 0,
            telemetry: words[6] != 0,
            machine: MachineConfig {
                serial_limit: words[5] as usize,
                block_engine: words[7] != 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_math() {
        let c = CampaignConfig::default();
        assert_eq!(c.cycle_budget(100), 1_300);
        let c = CampaignConfig {
            timeout_factor: 2,
            timeout_slack: 0,
            ..c
        };
        assert_eq!(c.cycle_budget(u64::MAX), u64::MAX); // saturates
    }

    #[test]
    fn thread_resolution() {
        assert!(CampaignConfig::default().effective_threads() >= 1);
        assert_eq!(CampaignConfig::sequential().effective_threads(), 1);
    }

    #[test]
    fn pack_unpack_round_trips() {
        let configs = [
            CampaignConfig::default(),
            CampaignConfig::sequential(),
            CampaignConfig {
                threads: 7,
                timeout_factor: 9,
                timeout_slack: 123,
                convergence: false,
                memoization: false,
                memo_gate: false,
                telemetry: true,
                machine: MachineConfig {
                    serial_limit: 42,
                    block_engine: false,
                },
            },
        ];
        for c in configs {
            assert_eq!(CampaignConfig::unpack(c.pack()), c);
        }
    }
}
