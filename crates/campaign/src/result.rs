//! Campaign result data.

use crate::outcome::{Outcome, OutcomeClass};
use sofi_space::{Experiment, FaultSpace};

/// Which machine component the faults were injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultDomain {
    /// Main memory — the paper's primary fault model (§II-C).
    Memory,
    /// The general-purpose register file `r1..r15` — the §VI-B
    /// generalization ("every bit in ... the CPU registers ... could be
    /// part of the fault space").
    RegisterFile,
}

/// Outcome of one executed experiment (one def/use class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentResult {
    /// The planned experiment (coordinate + class weight).
    pub experiment: Experiment,
    /// The observed outcome.
    pub outcome: Outcome,
}

/// Complete results of a (full fault-space) campaign.
///
/// Raw material for all metric computations: every experiment's outcome
/// together with its class weight and the weight of the known-benign
/// remainder of the fault space. The accounting itself — weighted coverage,
/// failure counts, extrapolation — lives in `sofi-metrics` so correct and
/// deliberately wrong variants can be compared side by side.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CampaignResult {
    /// Benchmark name (from the program).
    pub benchmark: String,
    /// Which component was injected into.
    pub domain: FaultDomain,
    /// The fault space scanned.
    pub space: FaultSpace,
    /// Weight of coordinates known benign without experiments.
    pub known_benign_weight: u64,
    /// Golden runtime in cycles.
    pub golden_cycles: u64,
    /// Per-experiment outcomes, in plan order.
    pub results: Vec<ExperimentResult>,
}

impl CampaignResult {
    /// Raw (unweighted) number of conducted experiments, `N` in the wrong
    /// accounting of Pitfall 1.
    pub fn experiments_run(&self) -> u64 {
        self.results.len() as u64
    }

    /// Unweighted count of experiments whose outcome satisfies `pred`.
    pub fn count_raw(&self, pred: impl Fn(Outcome) -> bool) -> u64 {
        self.results.iter().filter(|r| pred(r.outcome)).count() as u64
    }

    /// Weighted count: each matching experiment contributes its class
    /// weight (data-lifetime length), per Pitfall 1's requirement.
    pub fn count_weighted(&self, pred: impl Fn(Outcome) -> bool) -> u64 {
        self.results
            .iter()
            .filter(|r| pred(r.outcome))
            .map(|r| r.experiment.weight)
            .sum()
    }

    /// Weighted failure count `F`: the paper's sound comparison metric
    /// (§V). Known-benign coordinates contribute nothing by construction.
    pub fn failure_weight(&self) -> u64 {
        self.count_weighted(|o| o.class() == OutcomeClass::Failure)
    }

    /// Unweighted failure count (the Pitfall-1 mistake, kept for
    /// demonstration).
    pub fn failure_raw(&self) -> u64 {
        self.count_raw(|o| o.class() == OutcomeClass::Failure)
    }

    /// Weighted benign count including the pruned known-benign weight.
    pub fn benign_weight(&self) -> u64 {
        self.count_weighted(Outcome::is_benign) + self.known_benign_weight
    }

    /// Weighted tally per detailed outcome kind, indexed per
    /// [`Outcome::KINDS`]. The known-benign weight is folded into
    /// "No Effect" (index 0).
    pub fn weighted_by_kind(&self) -> [u64; 8] {
        let mut tally = [0u64; 8];
        for r in &self.results {
            tally[r.outcome.kind_index()] += r.experiment.weight;
        }
        tally[0] += self.known_benign_weight;
        tally
    }

    /// Consistency check: weights plus known-benign cover the fault space.
    pub fn covers_space(&self) -> bool {
        let experiment_weight: u64 = self.results.iter().map(|r| r.experiment.weight).sum();
        experiment_weight + self.known_benign_weight == self.space.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_space::FaultCoord;

    fn res(id: u32, cycle: u64, weight: u64, outcome: Outcome) -> ExperimentResult {
        ExperimentResult {
            experiment: Experiment {
                id,
                coord: FaultCoord { cycle, bit: 0 },
                weight,
            },
            outcome,
        }
    }

    fn fixture() -> CampaignResult {
        CampaignResult {
            benchmark: "t".into(),
            domain: FaultDomain::Memory,
            space: FaultSpace::new(10, 2),
            known_benign_weight: 11,
            golden_cycles: 10,
            results: vec![
                res(0, 3, 3, Outcome::SilentDataCorruption),
                res(1, 5, 1, Outcome::NoEffect),
                res(2, 9, 4, Outcome::Timeout),
                res(3, 10, 1, Outcome::DetectedCorrected),
            ],
        }
    }

    #[test]
    fn weighted_and_raw_counts() {
        let r = fixture();
        assert_eq!(r.experiments_run(), 4);
        assert_eq!(r.failure_raw(), 2);
        assert_eq!(r.failure_weight(), 7);
        assert_eq!(r.benign_weight(), 1 + 1 + 11);
        assert!(r.covers_space()); // 3+1+4+1+11 = 20 = 10·2
    }

    #[test]
    fn kind_tally_folds_known_benign() {
        let tally = fixture().weighted_by_kind();
        assert_eq!(tally[0], 1 + 11); // NoEffect + known benign
        assert_eq!(tally[1], 1); // DetectedCorrected
        assert_eq!(tally[2], 3); // SDC
        assert_eq!(tally[6], 4); // Timeout
        assert_eq!(tally.iter().sum::<u64>(), 20);
    }
}
