//! The campaign executor.

use crate::config::CampaignConfig;
use crate::outcome::Outcome;
use crate::result::{CampaignResult, ExperimentResult, FaultDomain};
use sofi_isa::Program;
use sofi_machine::{AccessKind, BlockStats, ConvergenceMask, ExternalEvent, Machine, StateDigest};
use sofi_space::{DefUseAnalysis, Experiment, InjectionPlan};
use sofi_telemetry::{names, LocalHistogram, Registry};
use sofi_trace::{GoldenError, GoldenRun};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default cycle limit for capturing golden runs.
const GOLDEN_CYCLE_LIMIT: u64 = 50_000_000;

/// Instrumentation from one executor invocation, used by scheduling
/// regression tests, the ablation benches, and the EXPERIMENTS.md bench
/// evidence.
///
/// `pristine_cycles` counts only forward simulation of *pristine*
/// machines performed during the call (advancing to injection points);
/// the one-time checkpoint construction (at most one golden runtime,
/// amortized over every subsequent run of the campaign) is not included.
/// `faulted_cycles` counts the cycles actually simulated inside faulted
/// runs, so `faulted_cycles_saved / (faulted_cycles +
/// faulted_cycles_saved)` is the fraction of faulted simulation work the
/// convergence optimization eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    /// Workers that actually executed experiments.
    pub workers: usize,
    /// Experiments executed.
    pub experiments: u64,
    /// Total pristine forward-simulation cycles across all workers.
    pub pristine_cycles: u64,
    /// Cycles simulated inside faulted runs (injection to termination —
    /// natural or early).
    pub faulted_cycles: u64,
    /// Experiments classified early because the faulted machine's
    /// architectural state converged back onto a pristine checkpoint.
    pub converged_early: u64,
    /// Faulted cycles *not* simulated thanks to convergence termination:
    /// a converged run is provably identical to golden for its remaining
    /// `golden_cycles − checkpoint_cycle` tail.
    pub faulted_cycles_saved: u64,
    /// Successful fault-equivalence cache lookups: experiments resolved
    /// without simulation at the injection point, plus running
    /// experiments resolved at a checkpoint crossing by re-entering an
    /// already-explored trajectory. An experiment can contribute both a
    /// miss (at injection) and a hit (mid-run), so `memo_hits +
    /// memo_misses` may exceed `experiments`.
    pub memo_hits: u64,
    /// Experiments whose injection-point memo lookup missed (the run was
    /// simulated and its state digests inserted into the cache).
    pub memo_misses: u64,
    /// Faulted cycles *not* simulated thanks to memo hits: the cached
    /// final cycle minus the cycle at which the hit occurred.
    pub memoized_cycles_saved: u64,
    /// Worker shards that finished with memo probing still enabled (the
    /// cost-model gate judged probing profitable, or
    /// [`CampaignConfig::memo_gate`] is off). Counted only when
    /// memoization itself is on.
    pub gate_shards_on: u64,
    /// Worker shards where the cost-model gate disabled memo probing —
    /// a priori (program too short for a probe to ever pay) or after
    /// sampling showed measured probe cost dominating observed savings.
    pub gate_shards_off: u64,
    /// Memo hits served from entries preloaded out of a persistent
    /// cross-campaign warm store ([`Campaign::preload_memo`]) — a subset
    /// of `memo_hits`, separated so repeat submissions can report how
    /// much the daemon's store answered without simulation.
    pub store_hits: u64,
}

impl ExecutorStats {
    /// Fraction of experiments that early-terminated via convergence.
    pub fn early_termination_rate(&self) -> f64 {
        if self.experiments == 0 {
            0.0
        } else {
            self.converged_early as f64 / self.experiments as f64
        }
    }

    /// Fraction of memo lookups that hit (`0.0` when memoization never
    /// ran).
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.memo_misses;
        if lookups == 0 {
            0.0
        } else {
            self.memo_hits as f64 / lookups as f64
        }
    }

    /// Folds a worker's counters into this (campaign-level) record.
    /// Associative and commutative, with `ExecutorStats::default()` as
    /// the identity (`tests/stats_merge.rs`), so campaign totals do not
    /// depend on worker join order or on how shards were grouped.
    pub fn absorb(&mut self, worker: &ExecutorStats) {
        self.workers += worker.workers;
        self.experiments += worker.experiments;
        self.pristine_cycles += worker.pristine_cycles;
        self.faulted_cycles += worker.faulted_cycles;
        self.converged_early += worker.converged_early;
        self.faulted_cycles_saved += worker.faulted_cycles_saved;
        self.memo_hits += worker.memo_hits;
        self.memo_misses += worker.memo_misses;
        self.memoized_cycles_saved += worker.memoized_cycles_saved;
        self.gate_shards_on += worker.gate_shards_on;
        self.gate_shards_off += worker.gate_shards_off;
        self.store_hits += worker.store_hits;
    }

    /// Fraction of memo hits answered by warm-store-preloaded entries
    /// (`0.0` when nothing hit).
    pub fn store_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.memo_misses;
        if lookups == 0 {
            0.0
        } else {
            self.store_hits as f64 / lookups as f64
        }
    }
}

/// Where a memo entry came from — provenance drives both the
/// `store_hits` accounting (hits on [`MemoOrigin::Store`] entries) and
/// [`Campaign::export_memo`] (only [`MemoOrigin::Fresh`] entries are
/// worth persisting: seeds are recomputed per campaign and store
/// entries are already persisted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemoOrigin {
    /// Recorded by a simulated run in this campaign.
    Fresh,
    /// Pre-seeded pristine checkpoint state.
    Seed,
    /// Preloaded from a persistent cross-campaign warm store.
    Store,
}

/// One memoized outcome: what a run in this exact architectural state
/// classified as, and the cycle at which it finished (for the
/// cycles-saved accounting on later hits).
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    outcome: Outcome,
    final_cycle: u64,
    origin: MemoOrigin,
}

/// One exportable fault-equivalence memo entry: a `(cycle, digest) →
/// (outcome, final_cycle)` fact that holds for any campaign over the
/// same program, event schedule and outcome-relevant configuration
/// (cycle budget, serial limit). The `sofi-serve` daemon journals these
/// in its persistent warm store and feeds them back into later
/// campaigns via [`Campaign::preload_memo`]; the digest is purely
/// content-determined, so records survive process restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoRecord {
    /// Cycle coordinate of the memoized state.
    pub cycle: u64,
    /// Architectural-state digest at that cycle.
    pub digest: StateDigest,
    /// Outcome every run passing through this state classifies as.
    pub outcome: Outcome,
    /// Cycle at which such a run finishes (for cycles-saved accounting).
    pub final_cycle: u64,
}

/// The per-campaign fault-equivalence memo: `(cycle, state digest) →
/// outcome`. Shared (`Arc`) between campaign clones and across worker
/// threads and fault domains — a register-domain injection and a
/// memory-domain injection that produce the same machine state are the
/// same experiment dynamically, and either may pay for the other.
///
/// Soundness: the machine is deterministic and the cycle budget is a
/// campaign constant, so the full architectural state at a given cycle
/// determines the rest of the run — final status, serial output and
/// detection count — and therefore the outcome. [`Machine::state_digest`]
/// covers exactly that state (128 bits, so a wrong hit needs a hash
/// collision); `tests/memoization_oracle.rs` and the fuzz battery hold
/// the memoized executor to bit-identical results against naive replay.
#[derive(Debug, Default)]
struct MemoCache {
    entries: Mutex<HashMap<(u64, StateDigest), MemoEntry>>,
}

impl MemoCache {
    fn get(&self, key: &(u64, StateDigest)) -> Option<MemoEntry> {
        self.entries.lock().unwrap().get(key).copied()
    }

    /// Inserts `entry` under every key, keeping existing entries (any
    /// previously recorded outcome for the same state is equally valid).
    fn insert_all(&self, keys: &[(u64, StateDigest)], entry: MemoEntry) {
        if keys.is_empty() {
            return;
        }
        let mut map = self.entries.lock().unwrap();
        for &key in keys {
            map.entry(key).or_insert(entry);
        }
    }

    fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

/// A prepared fault-injection campaign: program, golden run, def/use
/// analysis and pruned plan, ready to execute scans or samples.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Campaign {
    program: Program,
    events: Vec<ExternalEvent>,
    golden: GoldenRun,
    analysis: DefUseAnalysis,
    plan: InjectionPlan,
    reg_analysis: DefUseAnalysis,
    reg_plan: InjectionPlan,
    config: CampaignConfig,
    /// Evenly spaced pristine-machine snapshots plus the liveness mask at
    /// each snapshot cycle, built lazily on first use. Workers start
    /// mid-run from the nearest snapshot instead of re-simulating from
    /// cycle 0, and faulted runs compare against the snapshots to
    /// early-terminate once they have converged back onto the golden run.
    checkpoints: OnceLock<Vec<Checkpoint>>,
    /// Fault-equivalence outcome memo (see [`MemoCache`]); populated and
    /// consulted only when [`CampaignConfig::memoization`] is on.
    memo: Arc<MemoCache>,
    /// Set via [`Campaign::set_memo_harvest`] when this campaign feeds a
    /// persistent warm store: the cost gate then keeps probing locked on
    /// (shared by clones, like the memo itself).
    memo_harvest: Arc<AtomicBool>,
    /// Runtime observability ([`sofi_telemetry::Registry`]): phase spans,
    /// per-experiment histograms and executor counters. Disabled (all
    /// no-ops) unless [`CampaignConfig::telemetry`] is set or an enabled
    /// registry is passed to [`Campaign::with_events_telemetry`]. Clones
    /// of the campaign share the registry.
    telemetry: Registry,
}

/// Per-worker telemetry handles, resolved once before the experiment
/// loop so the hot path never touches the registry's name maps. The
/// per-experiment histograms go through [`LocalHistogram`] write-behind
/// buffers (plain unsynchronized increments, drained once per shard by
/// [`WorkerTel::flush`]), and memo-probe latency is *sampled* — one
/// timed probe in [`PROBE_SAMPLE`] — so the clock reads stay off the
/// common path. When the registry is disabled every record is a single
/// never-taken branch and no clock is ever read.
struct WorkerTel {
    registry: Registry,
    faulted_run_cycles: LocalHistogram,
    restore_distance: LocalHistogram,
    memo_probe_ns: LocalHistogram,
    dispatch_ns: LocalHistogram,
    probe_tick: Cell<u64>,
    dispatch_tick: Cell<u64>,
}

/// One memo probe (and one faulted-run dispatch) in this many is timed
/// into [`names::MEMO_PROBE_NS`] ([`names::DISPATCH_NS`]); the first is
/// always timed, so short campaigns still populate the histograms.
const PROBE_SAMPLE: u64 = 64;

impl WorkerTel {
    fn new(registry: &Registry) -> WorkerTel {
        WorkerTel {
            registry: registry.clone(),
            faulted_run_cycles: LocalHistogram::new(registry.histogram(names::FAULTED_RUN_CYCLES)),
            restore_distance: LocalHistogram::new(
                registry.histogram(names::RESTORE_DISTANCE_CYCLES),
            ),
            memo_probe_ns: LocalHistogram::new(registry.histogram(names::MEMO_PROBE_NS)),
            dispatch_ns: LocalHistogram::new(registry.histogram(names::DISPATCH_NS)),
            probe_tick: Cell::new(0),
            dispatch_tick: Cell::new(0),
        }
    }

    /// Runs one faulted-run dispatch, latency-sampled (1 in
    /// [`PROBE_SAMPLE`]) into [`names::DISPATCH_NS`] when telemetry is
    /// enabled — the per-experiment wall-clock the `+blocks` ablation
    /// drives down.
    fn timed_dispatch(&self, f: impl FnOnce() -> Outcome) -> Outcome {
        if self.dispatch_ns.is_enabled() {
            let tick = self.dispatch_tick.get();
            self.dispatch_tick.set(tick + 1);
            if tick.is_multiple_of(PROBE_SAMPLE) {
                let start = Instant::now();
                let outcome = f();
                self.dispatch_ns
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                return outcome;
            }
        }
        f()
    }

    /// A memo-cache lookup, latency-sampled when telemetry is enabled.
    fn probe(&self, memo: &MemoCache, key: &(u64, StateDigest)) -> Option<MemoEntry> {
        if self.memo_probe_ns.is_enabled() {
            let tick = self.probe_tick.get();
            self.probe_tick.set(tick + 1);
            if tick.is_multiple_of(PROBE_SAMPLE) {
                let start = Instant::now();
                let hit = memo.get(key);
                self.memo_probe_ns
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                return hit;
            }
        }
        memo.get(key)
    }

    /// Drains the histogram buffers and mirrors the worker's final
    /// counters into the registry — once per shard, off the
    /// per-experiment path. `blocks` carries the execution-engine
    /// dispatch counters accumulated across this worker's faulted runs.
    fn flush(&self, stats: &ExecutorStats, blocks: &BlockStats) {
        self.faulted_run_cycles.flush();
        self.restore_distance.flush();
        self.memo_probe_ns.flush();
        self.dispatch_ns.flush();
        if !self.registry.is_enabled() {
            return;
        }
        self.registry
            .counter(names::EXPERIMENTS)
            .add(stats.experiments);
        self.registry
            .counter(names::CONVERGED_EARLY)
            .add(stats.converged_early);
        self.registry.counter(names::MEMO_HITS).add(stats.memo_hits);
        self.registry
            .counter(names::MEMO_MISSES)
            .add(stats.memo_misses);
        self.registry
            .counter(names::GATE_SHARDS_ON)
            .add(stats.gate_shards_on);
        self.registry
            .counter(names::GATE_SHARDS_OFF)
            .add(stats.gate_shards_off);
        self.registry
            .counter(names::STORE_HITS)
            .add(stats.store_hits);
        self.registry
            .counter(names::BLOCK_CYCLES)
            .add(blocks.block_cycles);
        self.registry
            .counter(names::STEP_CYCLES)
            .add(blocks.step_cycles);
        self.registry
            .counter(names::BLOCKS_EXECUTED)
            .add(blocks.blocks);
    }
}

/// One probe (digest + lookup) and one faulted dispatch in this many is
/// wall-clock timed by the cost-model gate while it is still deciding.
const GATE_SAMPLE: u64 = 4;

/// A priori gate cut: with a cold cache, a program whose entire golden
/// runtime is this short can never pay for a probe — even a 100%-hit
/// campaign saves at most `golden_cycles` of simulation per experiment,
/// which is less than the fixed cost of one digest-plus-lookup.
const GATE_MIN_GOLDEN_CYCLES: u64 = 64;

/// First experiment count at which the gate applies the full measured
/// cost-vs-savings rule (reviews happen at every power of two).
const GATE_FULL_REVIEW: u64 = 32;

/// Cost-model gate state for one worker shard (see
/// [`CampaignConfig::memo_gate`]). The gate decides whether memo
/// probing — one state digest plus a shared-map lookup at the injection
/// point and at every checkpoint crossing — pays for itself on this
/// shard, by sampling the wall-clock cost of probes and of faulted
/// simulation and comparing measured probe spend against the simulation
/// time the observed hits avoided. Probing switches off at most once
/// per shard (no flapping); outcomes are identical either way because
/// the gate only skips lookups and insertions, never invents results.
struct MemoGate {
    /// Memo probing currently enabled for this shard.
    probing: bool,
    /// The gate is sampling and may still switch probing off. False
    /// when the gate knob or memoization is off, or after a decision.
    deciding: bool,
    /// Probes issued so far while probing.
    probes: u64,
    /// Sampled probe wall-clock (1 in [`GATE_SAMPLE`]).
    sampled_probe_ns: u64,
    sampled_probes: u64,
    /// Sampled faulted-run wall-clock and the cycles those runs
    /// simulated (pure memo hits — zero cycles — are excluded, so the
    /// ratio estimates ns per *simulated* cycle).
    sampled_run_ns: u64,
    sampled_run_cycles: u64,
    run_tick: u64,
}

impl MemoGate {
    /// Builds the shard's gate. `golden_cycles` and `warm_cache` feed
    /// the a-priori cut: a cold-cache campaign over a program shorter
    /// than [`GATE_MIN_GOLDEN_CYCLES`] disables probing outright (a
    /// warm cache — preloaded store entries or an earlier domain's
    /// trajectories — can hit at the injection point, which pays at any
    /// program length, so it always gets a measured trial). With
    /// `harvest` set ([`Campaign::set_memo_harvest`]) probing is locked
    /// on and never reviewed: the campaign's probes also produce the
    /// outcome facts a persistent warm store amortizes across future
    /// submissions, so "does probing pay within this one campaign" is
    /// the wrong question to ask.
    fn new(
        memoize: bool,
        adaptive: bool,
        golden_cycles: u64,
        warm_cache: bool,
        harvest: bool,
    ) -> MemoGate {
        let a_priori_off = memoize
            && adaptive
            && !harvest
            && !warm_cache
            && golden_cycles < GATE_MIN_GOLDEN_CYCLES;
        MemoGate {
            probing: memoize && !a_priori_off,
            deciding: memoize && adaptive && !harvest && !a_priori_off,
            probes: 0,
            sampled_probe_ns: 0,
            sampled_probes: 0,
            sampled_run_ns: 0,
            sampled_run_cycles: 0,
            run_tick: 0,
        }
    }

    /// One memo probe: digests `m` and looks the key up, wall-clock
    /// sampled while the gate is deciding. Returns the key (a waypoint
    /// candidate) and the lookup result.
    fn probe(
        &mut self,
        tel: &WorkerTel,
        memo: &MemoCache,
        m: &mut Machine,
    ) -> ((u64, StateDigest), Option<MemoEntry>) {
        self.probes += 1;
        if self.deciding && self.probes.is_multiple_of(GATE_SAMPLE) {
            let start = Instant::now();
            let key = (m.cycle(), m.state_digest());
            let hit = tel.probe(memo, &key);
            self.sampled_probe_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sampled_probes += 1;
            (key, hit)
        } else {
            let key = (m.cycle(), m.state_digest());
            (key, tel.probe(memo, &key))
        }
    }

    /// Whether the next faulted dispatch should be wall-clock timed for
    /// the gate's ns-per-cycle estimate.
    fn wants_run_sample(&mut self) -> bool {
        if !self.deciding {
            return false;
        }
        let tick = self.run_tick;
        self.run_tick += 1;
        tick.is_multiple_of(GATE_SAMPLE)
    }

    /// Records one timed faulted dispatch (skipped when the run was a
    /// pure memo hit and simulated nothing).
    fn record_run(&mut self, ns: u64, cycles: u64) {
        if cycles > 0 {
            self.sampled_run_ns += ns;
            self.sampled_run_cycles += cycles;
        }
    }

    /// Reviews the decision after `experiments` completed experiments
    /// (cheap: only acts at powers of two). Before [`GATE_FULL_REVIEW`]
    /// experiments only the hopeless case is cut — zero hits while
    /// measured probe spend already exceeds all simulation time — so
    /// campaigns whose hit rate ramps slowly (cold register-domain
    /// scans) are not written off early. From [`GATE_FULL_REVIEW`] on,
    /// probing must keep measured cost within twice the simulation time
    /// its hits saved.
    fn review(&mut self, experiments: u64, stats: &ExecutorStats) {
        if !self.deciding || experiments < 4 || !experiments.is_power_of_two() {
            return;
        }
        if self.sampled_probes == 0 || self.sampled_run_cycles == 0 {
            return; // nothing measured yet (e.g. every run hit at injection)
        }
        let avg_probe_ns = self.sampled_probe_ns as f64 / self.sampled_probes as f64;
        let cost_ns = self.probes as f64 * avg_probe_ns;
        let ns_per_cycle = self.sampled_run_ns as f64 / self.sampled_run_cycles as f64;
        let saved_ns = stats.memoized_cycles_saved as f64 * ns_per_cycle;
        let sim_ns = stats.faulted_cycles as f64 * ns_per_cycle;
        let off = if experiments < GATE_FULL_REVIEW {
            stats.memo_hits == 0 && cost_ns > sim_ns
        } else {
            cost_ns > 2.0 * saved_ns
        };
        if off {
            self.probing = false;
            self.deciding = false;
        } else if experiments >= GATE_FULL_REVIEW {
            // Probing has proven itself on real volume; stop sampling
            // (and stop paying for the clock) for the rest of the shard.
            self.deciding = false;
        }
    }
}

/// One pristine snapshot: the machine state after `machine.cycle()`
/// instructions, the set of RAM bytes / registers that are still *live*
/// (readable before being rewritten) from that cycle on, and the
/// snapshot's architectural-state digest (used to pre-seed the memo:
/// a faulted run in *exactly* this state replays the golden tail).
#[derive(Debug, Clone)]
struct Checkpoint {
    machine: Machine,
    mask: ConvergenceMask,
    digest: StateDigest,
}

impl Campaign {
    /// Prepares a campaign: captures the golden run and computes the
    /// def/use plan.
    ///
    /// # Errors
    ///
    /// Returns [`GoldenError`] if the fault-free program does not terminate
    /// cleanly within 50 M cycles.
    pub fn new(program: &Program) -> Result<Campaign, GoldenError> {
        Campaign::with_config(program, CampaignConfig::default())
    }

    /// [`Campaign::new`] with explicit execution parameters.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::new`].
    pub fn with_config(program: &Program, config: CampaignConfig) -> Result<Campaign, GoldenError> {
        Campaign::with_events(program, config, Vec::new())
    }

    /// [`Campaign::with_config`] plus a deterministic external-event
    /// schedule, replayed identically in the golden run and in every
    /// experiment (§II-C).
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::new`].
    pub fn with_events(
        program: &Program,
        config: CampaignConfig,
        events: Vec<ExternalEvent>,
    ) -> Result<Campaign, GoldenError> {
        let telemetry = Registry::with_enabled(config.telemetry);
        Campaign::with_events_telemetry(program, config, events, telemetry)
    }

    /// [`Campaign::with_config`] recording into a caller-supplied
    /// telemetry registry (the campaign daemon passes a per-job registry
    /// here; an enabled registry wins over `config.telemetry`).
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::new`].
    pub fn with_config_telemetry(
        program: &Program,
        config: CampaignConfig,
        telemetry: Registry,
    ) -> Result<Campaign, GoldenError> {
        Campaign::with_events_telemetry(program, config, Vec::new(), telemetry)
    }

    /// [`Campaign::with_events`] recording into a caller-supplied
    /// telemetry registry. Golden-run capture and def/use pruning are
    /// timed as spans here, which is why the registry must exist before
    /// construction rather than being attached afterwards.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::new`].
    pub fn with_events_telemetry(
        program: &Program,
        config: CampaignConfig,
        events: Vec<ExternalEvent>,
        telemetry: Registry,
    ) -> Result<Campaign, GoldenError> {
        let golden = {
            let _span = telemetry.span(names::SPAN_GOLDEN_RUN_NS);
            GoldenRun::capture_with_events(
                program,
                GOLDEN_CYCLE_LIMIT,
                config.machine,
                events.clone(),
            )?
        };
        let span = telemetry.span(names::SPAN_DEFUSE_NS);
        let analysis = DefUseAnalysis::from_golden(&golden);
        let plan = analysis.plan();
        let reg_analysis = DefUseAnalysis::from_timelines(&golden.reg_timelines(), golden.cycles);
        let reg_plan = reg_analysis.plan();
        span.finish();
        Ok(Campaign {
            program: program.clone(),
            events,
            golden,
            analysis,
            plan,
            reg_analysis,
            reg_plan,
            config,
            checkpoints: OnceLock::new(),
            memo: Arc::new(MemoCache::default()),
            memo_harvest: Arc::new(AtomicBool::new(false)),
            telemetry,
        })
    }

    /// The campaign's telemetry registry (disabled — snapshots empty —
    /// unless enabled at construction).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The golden (reference) run.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The def/use analysis of the golden run.
    pub fn analysis(&self) -> &DefUseAnalysis {
        &self.analysis
    }

    /// The pruned injection plan (memory domain).
    pub fn plan(&self) -> &InjectionPlan {
        &self.plan
    }

    /// The def/use analysis of the register-file fault space (§VI-B:
    /// `Δt cycles × 480 register bits`, with accesses recorded exactly as
    /// the datapath performs them).
    pub fn register_analysis(&self) -> &DefUseAnalysis {
        &self.reg_analysis
    }

    /// The pruned injection plan for the register-file domain.
    pub fn register_plan(&self) -> &InjectionPlan {
        &self.reg_plan
    }

    /// The pruned injection plan for `domain` (the campaign service and
    /// other callers that carry the domain as data rather than picking an
    /// accessor statically).
    pub fn plan_for(&self, domain: FaultDomain) -> &InjectionPlan {
        match domain {
            FaultDomain::Memory => &self.plan,
            FaultDomain::RegisterFile => &self.reg_plan,
        }
    }

    /// The program under test.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The deterministic external-event schedule (empty by default).
    pub fn events(&self) -> &[ExternalEvent] {
        &self.events
    }

    /// Executes the def/use-pruned full fault-space scan: one experiment
    /// per equivalence class, covering the entire space exactly.
    pub fn run_full_defuse(&self) -> CampaignResult {
        self.run_plan(&self.plan)
    }

    /// Executes the full def/use scan of the *register-file* fault space
    /// (§VI-B). Coordinates are `(cycle, (reg − 1)·32 + bit)` over
    /// `r1..r15`.
    pub fn run_full_defuse_registers(&self) -> CampaignResult {
        self.run_plan_in(FaultDomain::RegisterFile, &self.reg_plan)
    }

    /// Brute-force scan of the register file (tiny programs only; used to
    /// validate register-domain pruning).
    pub fn run_brute_force_registers(&self) -> CampaignResult {
        let plan = InjectionPlan::full_scan(self.reg_analysis.space);
        self.run_plan_in(FaultDomain::RegisterFile, &plan)
    }

    /// Executes a brute-force scan: one experiment for *every* raw
    /// coordinate, no pruning. Exponentially more experiments than
    /// [`Campaign::run_full_defuse`] — only for tiny programs and for
    /// validating that pruning is outcome-preserving.
    pub fn run_brute_force(&self) -> CampaignResult {
        let plan = InjectionPlan::full_scan(self.analysis.space);
        self.run_plan(&plan)
    }

    /// Executes an arbitrary plan against this campaign's program
    /// (memory-domain injections).
    pub fn run_plan(&self, plan: &InjectionPlan) -> CampaignResult {
        self.run_plan_in(FaultDomain::Memory, plan)
    }

    /// Executes an arbitrary plan with injections into the given domain.
    pub fn run_plan_in(&self, domain: FaultDomain, plan: &InjectionPlan) -> CampaignResult {
        self.run_plan_stats(domain, plan).0
    }

    /// [`Campaign::run_plan_in`] plus executor instrumentation, for
    /// reporting pristine/faulted cycle counts and convergence savings.
    pub fn run_plan_stats(
        &self,
        domain: FaultDomain,
        plan: &InjectionPlan,
    ) -> (CampaignResult, ExecutorStats) {
        let (results, stats) = self.run_experiments_stats(domain, &plan.experiments);
        (self.assemble_result(domain, plan, results), stats)
    }

    /// Builds the canonical [`CampaignResult`] for `plan` from per-experiment
    /// results produced in any order — by this process's executor or
    /// re-assembled from a `sofi-serve` journal after a crash. The output is
    /// bit-identical to [`Campaign::run_plan_stats`]'s result as long as
    /// `results` covers the plan exactly once per experiment (results are
    /// sorted by experiment id; metadata comes from the plan and golden run).
    pub fn assemble_result(
        &self,
        domain: FaultDomain,
        plan: &InjectionPlan,
        mut results: Vec<ExperimentResult>,
    ) -> CampaignResult {
        results.sort_by_key(|r| r.experiment.id);
        CampaignResult {
            benchmark: self.program.name.clone(),
            domain,
            space: plan.space,
            known_benign_weight: plan.known_benign_weight,
            golden_cycles: self.golden.cycles,
            results,
        }
    }

    /// [`Campaign::run_full_defuse`] plus executor instrumentation.
    pub fn run_full_defuse_stats(&self) -> (CampaignResult, ExecutorStats) {
        self.run_plan_stats(FaultDomain::Memory, &self.plan)
    }

    /// [`Campaign::run_full_defuse_registers`] plus executor
    /// instrumentation.
    pub fn run_full_defuse_registers_stats(&self) -> (CampaignResult, ExecutorStats) {
        self.run_plan_stats(FaultDomain::RegisterFile, &self.reg_plan)
    }

    /// Executes a list of memory-domain experiments (any order) and
    /// returns their outcomes (unordered; callers sort as needed).
    pub fn run_experiments(&self, experiments: &[Experiment]) -> Vec<ExperimentResult> {
        self.run_experiments_in(FaultDomain::Memory, experiments)
    }

    /// Executes a list of experiments with injections into the given
    /// domain.
    pub fn run_experiments_in(
        &self,
        domain: FaultDomain,
        experiments: &[Experiment],
    ) -> Vec<ExperimentResult> {
        self.run_experiments_stats(domain, experiments).0
    }

    /// [`Campaign::run_experiments_in`] plus executor instrumentation.
    ///
    /// Parallel runs partition the cycle-sorted experiment list into one
    /// contiguous chunk per worker, balanced by cycle span (not by
    /// experiment count): each worker advances its own pristine machine
    /// over a disjoint cycle range, starting from the nearest
    /// [checkpoint](ExecutorStats). Total pristine forward simulation
    /// therefore stays within a small factor of the sequential executor
    /// instead of growing linearly with the worker count.
    ///
    /// When [`CampaignConfig::convergence`] is on (the default), each
    /// faulted run additionally pauses at every pristine checkpoint cycle
    /// it crosses and compares its architectural state against the stored
    /// snapshot ([`Machine::converged_with`]): on a match the rest of the
    /// run is provably identical to golden, so the outcome is classified
    /// immediately instead of simulating the tail.
    ///
    /// When [`CampaignConfig::memoization`] is on (the default), each
    /// experiment's post-injection state digest is additionally looked up
    /// in the campaign's fault-equivalence memo — two injections that
    /// produce the identical architectural state at the same cycle have
    /// the identical outcome on a deterministic machine, so the second
    /// one is free. Lookups and insertions also happen at every
    /// checkpoint crossing, so runs converging *into* an explored
    /// trajectory hit mid-flight. Results are `assert_eq!`-identical to
    /// [`Campaign::run_experiments_naive`] with any combination of the
    /// two knobs.
    pub fn run_experiments_stats(
        &self,
        domain: FaultDomain,
        experiments: &[Experiment],
    ) -> (Vec<ExperimentResult>, ExecutorStats) {
        let threads = self
            .config
            .effective_threads()
            .min(experiments.len().max(1));
        let checkpoints: &[Checkpoint] =
            if self.config.convergence || self.config.memoization || threads > 1 {
                self.checkpoints()
            } else {
                &[]
            };
        if threads <= 1 {
            let tel = WorkerTel::new(&self.telemetry);
            return self.run_worker(
                domain,
                self.fresh_machine(),
                experiments.iter().copied(),
                checkpoints,
                &tel,
            );
        }

        // Cycle-sort so every chunk is a contiguous injection-cycle range.
        let mut sorted = experiments.to_vec();
        sorted.sort_unstable_by_key(|e| (e.coord.cycle, e.coord.bit, e.id));
        let chunks = chunk_by_cycle_span(&sorted, threads);

        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let start = self.machine_at(checkpoints, chunk[0].coord.pre_injection_cycle());
                    // Each worker records into a forked child registry;
                    // the parent absorbs them after join. Absorption is
                    // associative and commutative (sofi-telemetry's
                    // merge-law tests), so totals do not depend on the
                    // shard structure.
                    let child = self.telemetry.fork();
                    scope.spawn(move || {
                        let tel = WorkerTel::new(&child);
                        let part = self.run_worker(
                            domain,
                            start,
                            chunk.iter().copied(),
                            checkpoints,
                            &tel,
                        );
                        (part, child)
                    })
                })
                .collect();
            let joined: Vec<_> = handles
                .into_iter()
                .map(|handle| handle.join().expect("campaign worker panicked"))
                .collect();
            let merge_span = self.telemetry.span(names::SPAN_MERGE_NS);
            let mut stats = ExecutorStats::default();
            let mut results = Vec::with_capacity(sorted.len());
            for ((part, worker), child) in joined {
                stats.absorb(&worker);
                self.telemetry.absorb(&child);
                results.extend(part);
            }
            merge_span.finish();
            (results, stats)
        })
    }

    /// A pristine machine at cycle 0.
    fn fresh_machine(&self) -> Machine {
        Machine::with_events(&self.program, self.config.machine, self.events.clone())
    }

    /// The evenly spaced pristine snapshots, built on first use. The
    /// build costs at most one golden runtime (plus one liveness sweep
    /// over the golden access traces) and is amortized over every
    /// subsequent run. Convergence termination wants a reasonably dense
    /// grid (a faulted run keeps simulating until the next checkpoint
    /// even after its fault is masked), so the count floors at 64 when
    /// the optimization is enabled; snapshots are cheap because RAM pages
    /// are copy-on-write shared between them.
    fn checkpoints(&self) -> &[Checkpoint] {
        self.checkpoints.get_or_init(|| {
            let base = 8 * self.config.effective_threads() as u64;
            let floor = if self.config.convergence || self.config.memoization {
                64
            } else {
                16
            };
            let count = base.clamp(floor, 256);
            let spacing = (self.golden.cycles / count).max(1);
            let mut machine = self.fresh_machine();
            let mut snapshots = Vec::new();
            let mut cycle = spacing;
            while cycle < self.golden.cycles {
                let early = machine.run_to(cycle);
                debug_assert!(early.is_none(), "golden run outlived itself");
                // Digesting the running machine (not the clone) keeps its
                // page-hash cache warm, so each snapshot digest only
                // re-hashes pages written since the previous checkpoint
                // and every clone of a snapshot inherits a warm cache.
                let digest = machine.state_digest();
                snapshots.push((machine.clone(), digest));
                cycle += spacing;
            }
            let cycles: Vec<u64> = snapshots.iter().map(|(m, _)| m.cycle()).collect();
            let masks = self.convergence_masks(&cycles);
            let checkpoints: Vec<Checkpoint> = snapshots
                .into_iter()
                .zip(masks)
                .map(|((machine, digest), mask)| Checkpoint {
                    machine,
                    mask,
                    digest,
                })
                .collect();
            if self.config.memoization {
                self.seed_memo(&checkpoints);
            }
            checkpoints
        })
    }

    /// Pre-seeds the memo with every pristine checkpoint state: a faulted
    /// run whose architectural state is *exactly* the pristine machine's
    /// at a checkpoint cycle (fault fully overwritten, no output or
    /// detection divergence — the digest covers all of it) replays the
    /// golden tail verbatim and is [`Outcome::NoEffect`] by construction.
    fn seed_memo(&self, checkpoints: &[Checkpoint]) {
        let keys: Vec<(u64, StateDigest)> = checkpoints
            .iter()
            .map(|c| (c.machine.cycle(), c.digest))
            .collect();
        self.memo.insert_all(
            &keys,
            MemoEntry {
                outcome: Outcome::NoEffect,
                final_cycle: self.golden.cycles,
                origin: MemoOrigin::Seed,
            },
        );
    }

    /// Marks this campaign as feeding a persistent warm store: the cost
    /// gate keeps memo probing locked on for every shard, short golden
    /// runs included, because the probes' outcome facts are exported
    /// ([`Campaign::export_memo`]) and amortized across future
    /// submissions over the same context — even when probing cannot pay
    /// for itself within this single campaign. No-op when
    /// [`CampaignConfig::memoization`] is off.
    pub fn set_memo_harvest(&self) {
        self.memo_harvest.store(true, Ordering::Relaxed);
    }

    /// Exports the fault-equivalence facts *this campaign's runs*
    /// established: every [`MemoOrigin::Fresh`] entry, sorted by
    /// `(cycle, digest)` for deterministic output. Pre-seeded checkpoint
    /// states and entries preloaded via [`Campaign::preload_memo`] are
    /// excluded — the former are recomputed per campaign, the latter are
    /// already persisted wherever they came from.
    pub fn export_memo(&self) -> Vec<MemoRecord> {
        let map = self.memo.entries.lock().unwrap();
        let mut out: Vec<MemoRecord> = map
            .iter()
            .filter(|(_, e)| e.origin == MemoOrigin::Fresh)
            .map(|(&(cycle, digest), e)| MemoRecord {
                cycle,
                digest,
                outcome: e.outcome,
                final_cycle: e.final_cycle,
            })
            .collect();
        drop(map);
        out.sort_by_key(|r| (r.cycle, r.digest.to_bits()));
        out
    }

    /// Preloads externally persisted fault-equivalence facts (from the
    /// `sofi-serve` warm store, or a previous campaign's
    /// [`Campaign::export_memo`]) into the memo. Existing entries win;
    /// preloaded entries are tagged [`MemoOrigin::Store`] so hits on
    /// them are counted separately ([`ExecutorStats::store_hits`]) and
    /// they are not re-exported. No-op when memoization is off.
    ///
    /// Soundness is the caller's contract: records must come from a
    /// campaign over the same program, event schedule, cycle budget and
    /// serial limit (the daemon keys its store by exactly that context).
    pub fn preload_memo(&self, records: &[MemoRecord]) {
        if !self.config.memoization || records.is_empty() {
            return;
        }
        let mut map = self.memo.entries.lock().unwrap();
        for r in records {
            map.entry((r.cycle, r.digest)).or_insert(MemoEntry {
                outcome: r.outcome,
                final_cycle: r.final_cycle,
                origin: MemoOrigin::Store,
            });
        }
    }

    /// Clears the fault-equivalence memo (re-seeding the pristine
    /// checkpoint states). Outcomes never depend on cache contents; this
    /// exists so ablation benchmarks can time cold-cache campaigns.
    pub fn reset_memo(&self) {
        self.memo.clear();
        if self.config.memoization {
            if let Some(checkpoints) = self.checkpoints.get() {
                self.seed_memo(checkpoints);
            }
        }
    }

    /// Computes, for each snapshot, which RAM bytes and registers are
    /// still live there: a location is live after cycle `c` iff its first
    /// access in the golden trace after `c` is a read. Dead locations are
    /// rewritten before any read (or never touched again), so a faulted
    /// run may differ there and still be observationally identical to
    /// golden — [`Machine::converged_with_masked`] exploits exactly this.
    fn convergence_masks(&self, snapshot_cycles: &[u64]) -> Vec<ConvergenceMask> {
        let ram_bytes = (self.golden.ram_bits / 8) as usize;
        // Access history per RAM byte and per register, in execution
        // order (the traces are cycle-sorted already).
        let mut mem: Vec<Vec<(u64, bool)>> = vec![Vec::new(); ram_bytes];
        for a in &self.golden.trace {
            let read = a.kind == AccessKind::Read;
            for b in a.addr..a.addr + a.width.bytes() {
                mem[b as usize].push((a.cycle, read));
            }
        }
        let mut regs: [Vec<(u64, bool)>; 16] = Default::default();
        for a in &self.golden.reg_trace {
            regs[a.reg.index()].push((a.cycle, a.kind == AccessKind::Read));
        }
        let live_after = |hist: &[(u64, bool)], c: u64| {
            let next = hist.partition_point(|&(cycle, _)| cycle <= c);
            matches!(hist.get(next), Some(&(_, true)))
        };
        snapshot_cycles
            .iter()
            .map(|&c| {
                let mut ram_live = vec![0u8; ram_bytes.div_ceil(8)];
                for (b, hist) in mem.iter().enumerate() {
                    if live_after(hist, c) {
                        ram_live[b / 8] |= 1 << (b % 8);
                    }
                }
                let mut reg_live = 0u16;
                for (r, hist) in regs.iter().enumerate() {
                    if live_after(hist, c) {
                        reg_live |= 1 << r;
                    }
                }
                ConvergenceMask { ram_live, reg_live }
            })
            .collect()
    }

    /// Clones the latest checkpoint at or before `cycle` (a fresh
    /// machine when none qualifies).
    fn machine_at(&self, checkpoints: &[Checkpoint], cycle: u64) -> Machine {
        match checkpoints.partition_point(|c| c.machine.cycle() <= cycle) {
            0 => self.fresh_machine(),
            n => checkpoints[n - 1].machine.clone(),
        }
    }

    /// Naive reference executor: replays every experiment from cycle 0
    /// instead of forking a forward-running pristine machine. Costs
    /// `O(Σ cycle_i)` extra work — kept as the ablation baseline for the
    /// fork optimization (`benches/campaign.rs`) and as an oracle in
    /// tests; results are identical by construction.
    pub fn run_experiments_naive(
        &self,
        domain: FaultDomain,
        experiments: &[Experiment],
    ) -> Vec<ExperimentResult> {
        let budget = self.config.cycle_budget(self.golden.cycles);
        experiments
            .iter()
            .map(|&e| {
                let mut m =
                    Machine::with_events(&self.program, self.config.machine, self.events.clone());
                let early = m.run_to(e.coord.pre_injection_cycle());
                assert!(early.is_none(), "plan outlived the program");
                match domain {
                    FaultDomain::Memory => m.flip_bit(e.coord.bit),
                    FaultDomain::RegisterFile => m.flip_reg_bit(e.coord.bit),
                }
                let status = m.run(budget);
                let outcome = Outcome::classify(status, m.serial(), m.detect_count(), &self.golden);
                ExperimentResult {
                    experiment: e,
                    outcome,
                }
            })
            .collect()
    }

    /// Sequential worker: advances a pristine machine monotonically along
    /// the (cycle-sorted) experiment stream and forks it per experiment.
    /// Returns the results plus this worker's counters.
    fn run_worker(
        &self,
        domain: FaultDomain,
        mut pristine: Machine,
        experiments: impl Iterator<Item = Experiment>,
        checkpoints: &[Checkpoint],
        tel: &WorkerTel,
    ) -> (Vec<ExperimentResult>, ExecutorStats) {
        let shard_span = tel.registry.span(names::SPAN_SHARD_NS);
        let mut stats = ExecutorStats {
            workers: 1,
            ..ExecutorStats::default()
        };
        let mut out = Vec::new();
        let mut block_totals = BlockStats::default();
        // A cache holding more than the per-checkpoint seeds is warm —
        // preloaded from the daemon's store or populated by an earlier
        // domain's runs over this shared campaign — and exempt from the
        // gate's a-priori short-program cut (injection-point hits pay at
        // any program length).
        let warm_cache = self.memo.len() > checkpoints.len();
        let mut gate = MemoGate::new(
            self.config.memoization,
            self.config.memo_gate,
            self.golden.cycles,
            warm_cache,
            self.memo_harvest.load(Ordering::Relaxed),
        );
        // The worker's start machine always comes from a checkpoint
        // restore (or a fresh machine), so the first advance is a
        // restore distance too.
        let mut restored = true;
        for e in experiments {
            let pre_cycle = e.coord.pre_injection_cycle();
            if pristine.cycle() > pre_cycle {
                // Out-of-order experiment: resume from the nearest
                // checkpoint at or before the injection point (a fresh
                // machine when none qualifies) instead of always
                // rebuilding from cycle 0.
                pristine = self.machine_at(checkpoints, pre_cycle);
                restored = true;
            }
            stats.pristine_cycles += pre_cycle - pristine.cycle();
            if restored {
                tel.restore_distance.record(pre_cycle - pristine.cycle());
                restored = false;
            }
            let early = pristine.run_to(pre_cycle);
            assert!(
                early.is_none(),
                "golden-derived plan outlived the program (cycle {})",
                e.coord.cycle
            );
            if self.config.memoization && gate.probing {
                // Warm the pristine machine's page-hash cache so the
                // fork's injection-point digest below only re-hashes the
                // page the bit-flip dirties (none, for register faults).
                let _ = pristine.state_digest();
            }
            let mut m = pristine.clone();
            match domain {
                FaultDomain::Memory => m.flip_bit(e.coord.bit),
                FaultDomain::RegisterFile => m.flip_reg_bit(e.coord.bit),
            }
            let base = m.block_stats();
            let outcome = if gate.wants_run_sample() {
                let cycles_before = stats.faulted_cycles;
                let start = Instant::now();
                let outcome = tel.timed_dispatch(|| {
                    self.run_faulted(&mut m, checkpoints, &mut stats, tel, &mut gate)
                });
                gate.record_run(
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    stats.faulted_cycles - cycles_before,
                );
                outcome
            } else {
                tel.timed_dispatch(|| {
                    self.run_faulted(&mut m, checkpoints, &mut stats, tel, &mut gate)
                })
            };
            block_totals.absorb(m.block_stats().delta_since(base));
            stats.experiments += 1;
            gate.review(stats.experiments, &stats);
            out.push(ExperimentResult {
                experiment: e,
                outcome,
            });
        }
        if self.config.memoization {
            if gate.probing {
                stats.gate_shards_on = 1;
            } else {
                stats.gate_shards_off = 1;
            }
        }
        tel.flush(&stats, &block_totals);
        shard_span.finish();
        (out, stats)
    }

    /// Runs one faulted machine to its classification.
    ///
    /// With convergence enabled, the run pauses at every pristine
    /// checkpoint cycle it crosses. If the faulted machine's architectural
    /// state matches the snapshot there ([`Machine::converged_with`]),
    /// determinism makes the remaining tail identical to the golden run:
    /// it will halt cleanly at `golden_cycles` having emitted exactly the
    /// golden serial tail and `golden_detects − checkpoint_detects`
    /// further detections. The final classification is therefore fully
    /// determined at the checkpoint, without simulating the tail:
    ///
    /// * serial so far not a golden prefix → the complete output will
    ///   differ → [`Outcome::SilentDataCorruption`];
    /// * detections above the checkpoint's → the final count exceeds
    ///   golden's → [`Outcome::DetectedCorrected`];
    /// * otherwise → [`Outcome::NoEffect`].
    ///
    /// Convergence uses the *masked* comparison: RAM bytes and registers
    /// that the golden run rewrites before reading (or never touches
    /// again) are excluded, so faults that simply go dormant for the rest
    /// of the run also terminate early.
    ///
    /// With memoization enabled, the run first looks up its
    /// post-injection `(cycle, state digest)` in the campaign memo and
    /// returns the cached outcome on a hit; on a miss it simulates,
    /// repeating the lookup at every checkpoint crossing (before the
    /// convergence comparison, so exact re-entries into explored
    /// trajectories — including the pre-seeded pristine states — resolve
    /// as hits), and finally inserts every state it passed through.
    fn run_faulted(
        &self,
        m: &mut Machine,
        checkpoints: &[Checkpoint],
        stats: &mut ExecutorStats,
        tel: &WorkerTel,
        gate: &mut MemoGate,
    ) -> Outcome {
        let budget = self.config.cycle_budget(self.golden.cycles);
        let start_cycle = m.cycle();
        // The cost-model gate masks memoization for the rest of the
        // shard once probing demonstrably cannot pay (see [`MemoGate`]);
        // a gated-off run neither looks up nor records trajectories.
        let memoize = self.config.memoization && gate.probing;
        // State digests this run passes through; on completion every one
        // of them maps to the run's outcome, so later injections that
        // converge *into* this trajectory hit at their next checkpoint.
        let mut waypoints: Vec<(u64, StateDigest)> = Vec::new();
        if memoize {
            // Injection-point lookup: an earlier experiment (in either
            // fault domain) that produced this exact post-injection state
            // already determined the outcome.
            let (key, hit) = gate.probe(tel, &self.memo, m);
            if let Some(hit) = hit {
                stats.memo_hits += 1;
                if hit.origin == MemoOrigin::Store {
                    stats.store_hits += 1;
                }
                stats.memoized_cycles_saved += hit.final_cycle.saturating_sub(m.cycle());
                tel.faulted_run_cycles.record(0);
                return hit.outcome;
            }
            stats.memo_misses += 1;
            waypoints.push(key);
        }
        // Early termination is only sound if a converged run's tail — the
        // rest of the golden run — fits the budget; with any sane timeout
        // configuration it does (budget ≥ golden runtime).
        if (self.config.convergence || memoize) && self.golden.cycles <= budget {
            let first = checkpoints.partition_point(|c| c.machine.cycle() <= m.cycle());
            for ckpt in &checkpoints[first..] {
                if let Some(status) = m.run_to(ckpt.machine.cycle()) {
                    stats.faulted_cycles += m.cycle() - start_cycle;
                    tel.faulted_run_cycles.record(m.cycle() - start_cycle);
                    let outcome =
                        Outcome::classify(status, m.serial(), m.detect_count(), &self.golden);
                    self.memo.insert_all(
                        &waypoints,
                        MemoEntry {
                            outcome,
                            final_cycle: m.cycle(),
                            origin: MemoOrigin::Fresh,
                        },
                    );
                    return outcome;
                }
                if memoize {
                    // Checkpoint-crossing lookup, deliberately *before*
                    // the convergence comparison: runs re-entering an
                    // already-explored trajectory — most commonly the
                    // exact pristine state, pre-seeded per checkpoint —
                    // resolve here and also donate their own waypoints.
                    let (key, hit) = gate.probe(tel, &self.memo, m);
                    if let Some(hit) = hit {
                        stats.faulted_cycles += m.cycle() - start_cycle;
                        tel.faulted_run_cycles.record(m.cycle() - start_cycle);
                        stats.memo_hits += 1;
                        if hit.origin == MemoOrigin::Store {
                            stats.store_hits += 1;
                        }
                        stats.memoized_cycles_saved += hit.final_cycle.saturating_sub(m.cycle());
                        self.memo.insert_all(
                            &waypoints,
                            MemoEntry {
                                outcome: hit.outcome,
                                final_cycle: hit.final_cycle,
                                origin: MemoOrigin::Fresh,
                            },
                        );
                        return hit.outcome;
                    }
                    waypoints.push(key);
                }
                if self.config.convergence && m.converged_with_masked(&ckpt.machine, &ckpt.mask) {
                    stats.faulted_cycles += m.cycle() - start_cycle;
                    tel.faulted_run_cycles.record(m.cycle() - start_cycle);
                    stats.converged_early += 1;
                    stats.faulted_cycles_saved += self.golden.cycles - m.cycle();
                    let outcome = if !self.golden.matches_serial_prefix(m.serial()) {
                        Outcome::SilentDataCorruption
                    } else if m.detect_count() > ckpt.machine.detect_count() {
                        Outcome::DetectedCorrected
                    } else {
                        Outcome::NoEffect
                    };
                    // A converged run finishes (virtually) at the golden
                    // run's end; its recorded trajectory is still exact.
                    self.memo.insert_all(
                        &waypoints,
                        MemoEntry {
                            outcome,
                            final_cycle: self.golden.cycles,
                            origin: MemoOrigin::Fresh,
                        },
                    );
                    return outcome;
                }
            }
        }
        let status = m.run(budget);
        stats.faulted_cycles += m.cycle() - start_cycle;
        tel.faulted_run_cycles.record(m.cycle() - start_cycle);
        let outcome = Outcome::classify(status, m.serial(), m.detect_count(), &self.golden);
        self.memo.insert_all(
            &waypoints,
            MemoEntry {
                outcome,
                final_cycle: m.cycle(),
                origin: MemoOrigin::Fresh,
            },
        );
        outcome
    }
}

/// Splits the cycle-sorted experiments into at most `chunks` contiguous
/// runs with (approximately) equal injection-cycle spans. Balancing by
/// span rather than by count bounds each worker's pristine
/// forward-simulation range; empty spans produce no chunk.
fn chunk_by_cycle_span(sorted: &[Experiment], chunks: usize) -> Vec<&[Experiment]> {
    debug_assert!(!sorted.is_empty() && chunks > 0);
    let first = sorted[0].coord.cycle;
    let span = sorted[sorted.len() - 1].coord.cycle - first;
    let mut out = Vec::with_capacity(chunks);
    let mut begin = 0;
    for k in 1..=chunks as u64 {
        let end = if k == chunks as u64 {
            sorted.len()
        } else {
            let bound = first + span * k / chunks as u64;
            begin + sorted[begin..].partition_point(|e| e.coord.cycle <= bound)
        };
        if end > begin {
            out.push(&sorted[begin..end]);
            begin = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::OutcomeClass;
    use sofi_isa::{Asm, Reg};
    use std::collections::HashMap;

    /// The paper's "Hi" benchmark (Figure 3a): 8 cycles × 16 bits,
    /// F = 48, coverage 62.5 %.
    fn hi_program() -> Program {
        let mut a = Asm::with_name("hi");
        let msg = a.data_space("msg", 2);
        a.li(Reg::R1, 'H' as i32);
        a.sb(Reg::R1, Reg::R0, msg.offset());
        a.li(Reg::R1, 'i' as i32);
        a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
        a.lb(Reg::R2, Reg::R0, msg.offset());
        a.serial_out(Reg::R2);
        a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
        a.serial_out(Reg::R2);
        a.build().unwrap()
    }

    #[test]
    fn hi_full_defuse_matches_paper() {
        let c = Campaign::new(&hi_program()).unwrap();
        assert_eq!(c.golden().serial, b"Hi");
        assert_eq!(c.golden().fault_space_size(), 128);
        let r = c.run_full_defuse();
        assert!(r.covers_space());
        // All 16 experiment classes are failures (weight 3 each): F = 48.
        assert_eq!(r.results.len(), 16);
        assert_eq!(r.failure_weight(), 48);
        assert_eq!(r.benign_weight(), 80);
    }

    #[test]
    fn brute_force_agrees_with_defuse_expansion() {
        // The defining property of def/use pruning: expanding each class
        // result over its coordinates reproduces the brute-force scan.
        let c = Campaign::with_config(&hi_program(), CampaignConfig::sequential()).unwrap();
        let brute = c.run_brute_force();
        let pruned = c.run_full_defuse();
        assert_eq!(brute.results.len(), 128);
        assert_eq!(brute.failure_weight(), pruned.failure_weight());
        assert_eq!(brute.benign_weight(), pruned.benign_weight());

        // Per-coordinate agreement via the class index.
        let index = sofi_space::ClassIndex::new(c.analysis(), c.plan());
        let by_id: HashMap<u32, Outcome> = pruned
            .results
            .iter()
            .map(|r| (r.experiment.id, r.outcome))
            .collect();
        for br in &brute.results {
            let expected_class = match index.lookup(br.experiment.coord) {
                sofi_space::ClassRef::Experiment(id) => by_id[&id].class(),
                sofi_space::ClassRef::KnownBenign => OutcomeClass::NoEffect,
            };
            assert_eq!(
                br.outcome.class(),
                expected_class,
                "coordinate {} disagrees",
                br.experiment.coord
            );
        }
    }

    #[test]
    fn naive_replay_agrees_with_forking_executor() {
        let c = Campaign::with_config(&hi_program(), CampaignConfig::sequential()).unwrap();
        let fast = c.run_experiments(&c.plan().experiments);
        let naive = c.run_experiments_naive(crate::FaultDomain::Memory, &c.plan().experiments);
        assert_eq!(fast, naive);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // Tiny plan (16 experiments, more workers than cycle chunks)…
        let p = hi_program();
        let seq = Campaign::with_config(&p, CampaignConfig::sequential())
            .unwrap()
            .run_full_defuse();
        let par = Campaign::with_config(
            &p,
            CampaignConfig {
                threads: 4,
                ..CampaignConfig::default()
            },
        )
        .unwrap()
        .run_full_defuse();
        assert_eq!(seq, par);

        // …and a plan large enough that every worker gets a
        // multi-experiment contiguous chunk, in both fault domains.
        let p = sofi_workloads::fib(sofi_workloads::Variant::Baseline);
        let seq = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
        let par = Campaign::with_config(
            &p,
            CampaignConfig {
                threads: 4,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert!(
            seq.plan().experiments.len() >= 64,
            "memory plan too small ({}) to exercise chunking",
            seq.plan().experiments.len()
        );
        assert!(
            seq.register_plan().experiments.len() >= 64,
            "register plan too small ({}) to exercise chunking",
            seq.register_plan().experiments.len()
        );
        assert_eq!(seq.run_full_defuse(), par.run_full_defuse());
        assert_eq!(
            seq.run_full_defuse_registers(),
            par.run_full_defuse_registers()
        );
    }

    #[test]
    fn contiguous_chunks_bound_pristine_simulation() {
        // The scheduling regression this executor fixes: strided
        // round-robin distribution made every worker sweep (nearly) the
        // whole cycle range, so pristine forward simulation grew ~T×.
        // Contiguous cycle-span chunks + checkpoints keep it within
        // ~1.2× of the single-worker executor.
        let p = sofi_workloads::fib(sofi_workloads::Variant::Baseline);
        let seq = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
        let (mut seq_res, seq_stats) =
            seq.run_experiments_stats(FaultDomain::Memory, &seq.plan().experiments);
        assert_eq!(seq_stats.workers, 1);
        assert!(seq_stats.pristine_cycles > 0);

        let par = Campaign::with_config(
            &p,
            CampaignConfig {
                threads: 4,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        let (mut par_res, par_stats) =
            par.run_experiments_stats(FaultDomain::Memory, &par.plan().experiments);
        assert!(par_stats.workers > 1, "expected a parallel run");

        seq_res.sort_by_key(|r| r.experiment.id);
        par_res.sort_by_key(|r| r.experiment.id);
        assert_eq!(seq_res, par_res);

        let ratio = par_stats.pristine_cycles as f64 / seq_stats.pristine_cycles as f64;
        eprintln!(
            "pristine cycles: sequential {} / parallel {} over {} workers (ratio {ratio:.3})",
            seq_stats.pristine_cycles, par_stats.pristine_cycles, par_stats.workers
        );
        assert!(
            ratio <= 1.2,
            "parallel executor simulated {}x the sequential pristine cycles \
             ({} vs {})",
            ratio,
            par_stats.pristine_cycles,
            seq_stats.pristine_cycles
        );
    }

    #[test]
    fn cycle_span_chunks_are_contiguous_and_cover() {
        let experiments: Vec<Experiment> = (0..40u32)
            .map(|i| Experiment {
                id: i,
                // Quadratic spacing: a span-balanced split must put many
                // more early (dense) experiments in the first chunk.
                coord: sofi_space::FaultCoord {
                    cycle: 1 + (i as u64) * (i as u64),
                    bit: 0,
                },
                weight: 1,
            })
            .collect();
        let chunks = super::chunk_by_cycle_span(&experiments, 4);
        assert!(!chunks.is_empty() && chunks.len() <= 4);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, experiments.len());
        // Chunks are contiguous, in order, and disjoint in cycle ranges.
        let mut last_cycle = 0;
        for chunk in &chunks {
            assert!(!chunk.is_empty());
            assert!(chunk[0].coord.cycle > last_cycle);
            last_cycle = chunk[chunk.len() - 1].coord.cycle;
        }
        // Span balance: the dense low-cycle half lands in the first chunk.
        assert!(chunks[0].len() > chunks[chunks.len() - 1].len());
    }

    #[test]
    fn convergence_agrees_with_naive_and_saves_work() {
        for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
            let p = sofi_workloads::fib(sofi_workloads::Variant::Baseline);
            // Memoization off on both sides: this test isolates the
            // convergence optimization against the plain fork executor.
            let with = Campaign::with_config(
                &p,
                CampaignConfig {
                    memoization: false,
                    ..CampaignConfig::sequential()
                },
            )
            .unwrap();
            let without = Campaign::with_config(
                &p,
                CampaignConfig {
                    convergence: false,
                    memoization: false,
                    ..CampaignConfig::sequential()
                },
            )
            .unwrap();
            let experiments = match domain {
                FaultDomain::Memory => with.plan().experiments.clone(),
                FaultDomain::RegisterFile => with.register_plan().experiments.clone(),
            };

            let naive = with.run_experiments_naive(domain, &experiments);
            let (converged, on_stats) = with.run_experiments_stats(domain, &experiments);
            let (plain, off_stats) = without.run_experiments_stats(domain, &experiments);
            assert_eq!(converged, naive, "{domain:?}: convergence changed outcomes");
            assert_eq!(plain, naive, "{domain:?}: fork executor changed outcomes");

            assert_eq!(off_stats.converged_early, 0);
            assert_eq!(off_stats.faulted_cycles_saved, 0);
            assert!(
                on_stats.converged_early > 0,
                "{domain:?}: no experiment converged early"
            );
            assert!(on_stats.faulted_cycles_saved > 0);
            assert!(
                on_stats.faulted_cycles < off_stats.faulted_cycles,
                "{domain:?}: convergence did not reduce faulted simulation \
                 ({} vs {})",
                on_stats.faulted_cycles,
                off_stats.faulted_cycles
            );
            assert!(on_stats.early_termination_rate() > 0.0);
            assert_eq!(on_stats.experiments, experiments.len() as u64);
        }
    }

    /// A scrub-style program where many distinct faults collapse onto the
    /// *same* post-correction state: load a protected byte, restore its
    /// stored copy, and take an equal-length detect-and-zero path for any
    /// corruption. Every fault in the byte's live interval ends in the
    /// identical state (pristine + one detection) right after the join,
    /// so the memo must resolve all but the first one at a checkpoint.
    fn scrub_program() -> Program {
        let mut a = Asm::with_name("memo_scrub");
        let x = a.data_bytes("x", &[0]);
        let clean = a.new_label();
        let join = a.new_label();
        a.lb(Reg::R1, Reg::R0, x.offset()); // may be corrupted
        a.sb(Reg::R0, Reg::R0, x.offset()); // scrub the stored copy
        a.beq(Reg::R1, Reg::R0, clean);
        a.detect_signal(Reg::R1); // faulted path: 3 cycles
        a.mv(Reg::R1, Reg::R0);
        a.j(join);
        a.bind(clean);
        a.nop(); // clean path: 3 cycles
        a.nop();
        a.nop();
        a.bind(join);
        for _ in 0..200 {
            a.nop();
        }
        a.li(Reg::R2, b'k' as i32);
        a.serial_out(Reg::R2);
        a.build().unwrap()
    }

    #[test]
    fn memoized_executor_agrees_with_naive_and_hits() {
        // Memoization alone (convergence off, so the memo is the only
        // early-termination mechanism).
        let p = scrub_program();
        let c = Campaign::with_config(
            &p,
            CampaignConfig {
                convergence: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let experiments = c.plan().experiments.clone();
        let naive = c.run_experiments_naive(FaultDomain::Memory, &experiments);
        let (results, stats) = c.run_experiments_stats(FaultDomain::Memory, &experiments);
        assert_eq!(results, naive, "memoization changed outcomes");
        assert!(stats.memo_misses + stats.memo_hits >= stats.experiments);
        assert!(
            stats.memo_hits > 0,
            "all 8 faults in the protected byte collapse onto one \
             post-scrub state; at most one may miss ({stats:?})"
        );
        assert!(stats.memoized_cycles_saved > 0);
        assert!(
            results
                .iter()
                .any(|r| r.outcome == Outcome::DetectedCorrected),
            "scrub program should detect-and-correct"
        );

        // Second pass over the same plan: every injection state is now
        // cached, so nothing simulates at all.
        let (again, warm) = c.run_experiments_stats(FaultDomain::Memory, &experiments);
        assert_eq!(again, naive);
        assert_eq!(warm.memo_hits, warm.experiments);
        assert_eq!(warm.memo_misses, 0);
        assert_eq!(warm.faulted_cycles, 0, "warm cache: zero simulation");

        // reset_memo restores cold-cache behaviour (for ablation timing).
        c.reset_memo();
        let (cold, cold_stats) = c.run_experiments_stats(FaultDomain::Memory, &experiments);
        assert_eq!(cold, naive);
        assert!(cold_stats.memo_misses > 0, "reset did not clear the memo");
    }

    #[test]
    fn memoization_composes_with_convergence() {
        // Both optimizations on (the default): results still match naive
        // replay, and the memo lookup ordering (before the convergence
        // comparison) still produces hits.
        let p = scrub_program();
        let c = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
        for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
            let experiments = match domain {
                FaultDomain::Memory => c.plan().experiments.clone(),
                FaultDomain::RegisterFile => c.register_plan().experiments.clone(),
            };
            let naive = c.run_experiments_naive(domain, &experiments);
            let (results, stats) = c.run_experiments_stats(domain, &experiments);
            assert_eq!(
                results, naive,
                "{domain:?}: memo+convergence changed outcomes"
            );
            assert_eq!(stats.experiments, experiments.len() as u64);
            if domain == FaultDomain::Memory {
                assert!(stats.memo_hits > 0, "{domain:?}: expected hits ({stats:?})");
            }
        }
    }

    #[test]
    fn memoization_off_is_inert() {
        let p = scrub_program();
        let c = Campaign::with_config(
            &p,
            CampaignConfig {
                memoization: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let (results, stats) = c.run_experiments_stats(FaultDomain::Memory, &c.plan().experiments);
        assert_eq!(stats.memo_hits, 0);
        assert_eq!(stats.memo_misses, 0);
        assert_eq!(stats.memoized_cycles_saved, 0);
        let naive = c.run_experiments_naive(FaultDomain::Memory, &c.plan().experiments);
        assert_eq!(results, naive);
    }

    #[test]
    fn memo_is_shared_across_fault_domains() {
        // A register-file flip of a loaded copy and a memory flip of the
        // byte it was loaded from produce the same post-injection
        // machine state one cycle apart in general — but after the scrub
        // joins, both trajectories pass the same post-correction states,
        // so running the memory domain first must produce hits in the
        // register domain (cross-domain dynamic equivalence).
        let p = scrub_program();
        let c = Campaign::with_config(
            &p,
            CampaignConfig {
                convergence: false,
                ..CampaignConfig::sequential()
            },
        )
        .unwrap();
        let (_, mem_stats) = c.run_experiments_stats(FaultDomain::Memory, &c.plan().experiments);
        let (reg_results, reg_stats) =
            c.run_experiments_stats(FaultDomain::RegisterFile, &c.register_plan().experiments);
        let naive =
            c.run_experiments_naive(FaultDomain::RegisterFile, &c.register_plan().experiments);
        assert_eq!(reg_results, naive);
        assert!(
            mem_stats.memo_misses > 0,
            "memory domain ran first and populated the cache"
        );
        assert!(
            reg_stats.memo_hits > 0,
            "register-domain runs should re-enter memory-domain \
             trajectories ({reg_stats:?})"
        );
    }

    #[test]
    fn converged_detection_classified_corrected() {
        // Hardened pattern whose detect-and-scrub path has exactly the
        // same length as the clean path: a faulted run that takes it
        // re-aligns with the pristine machine (only detect_count ahead),
        // crosses a later checkpoint, and must early-terminate as
        // DetectedCorrected — not NoEffect, not a full-tail simulation.
        let mut a = Asm::with_name("scrub");
        let x = a.data_bytes("x", &[0]);
        let clean = a.new_label();
        let join = a.new_label();
        a.lb(Reg::R1, Reg::R0, x.offset()); // may be corrupted
        a.sb(Reg::R0, Reg::R0, x.offset()); // scrub the stored copy
        a.beq(Reg::R1, Reg::R0, clean);
        a.detect_signal(Reg::R1); // faulted path: 3 cycles
        a.mv(Reg::R1, Reg::R0);
        a.j(join);
        a.bind(clean);
        a.nop(); // clean path: 3 cycles
        a.nop();
        a.nop();
        a.bind(join);
        // Long benign tail so checkpoints land after the join.
        for _ in 0..200 {
            a.nop();
        }
        a.li(Reg::R2, b'k' as i32);
        a.serial_out(Reg::R2);
        let p = a.build().unwrap();

        let c = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
        let (result, stats) = c.run_full_defuse_stats();
        let naive = c.run_experiments_naive(FaultDomain::Memory, &c.plan().experiments);
        let mut naive_sorted = naive;
        naive_sorted.sort_by_key(|r| r.experiment.id);
        assert_eq!(result.results, naive_sorted);
        assert!(
            result
                .results
                .iter()
                .any(|r| r.outcome == Outcome::DetectedCorrected),
            "expected a detected-and-corrected experiment, got {:?}",
            result.results.iter().map(|r| r.outcome).collect::<Vec<_>>()
        );
        assert!(stats.converged_early > 0, "no early termination happened");
    }

    #[test]
    fn cycle_zero_coordinate_is_flip_before_first_instruction() {
        // Regression: the pre-injection advance used to compute
        // `coord.cycle - 1`, which underflows u64 for a raw cycle-0
        // coordinate (e.g. from a remote client) and sent `run_to` off
        // toward 2⁶⁴ cycles. A cycle-0 flip must instead behave exactly
        // like the cycle-1 coordinate: applied before the first
        // instruction executes.
        let p = hi_program();
        let c = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
        let bit = c.plan().experiments[0].coord.bit;
        let experiments: Vec<Experiment> = [0u64, 1u64]
            .iter()
            .map(|&cycle| Experiment {
                id: cycle as u32,
                coord: sofi_space::FaultCoord { cycle, bit },
                weight: 1,
            })
            .collect();
        for domain in [FaultDomain::Memory, FaultDomain::RegisterFile] {
            let naive = c.run_experiments_naive(domain, &experiments);
            let (composed, _) = c.run_experiments_stats(domain, &experiments);
            assert_eq!(composed, naive, "{domain:?}: executor paths disagree");
            assert_eq!(
                naive[0].outcome, naive[1].outcome,
                "{domain:?}: cycle-0 must classify like cycle-1"
            );
        }
    }

    #[test]
    fn out_of_order_experiments_restart_from_checkpoints() {
        // Feed the sequential worker its plan in *descending* cycle order:
        // every experiment forces a restart. With the checkpoint-based
        // restart the pristine rework is bounded by the checkpoint
        // spacing; the old always-from-zero restart would re-simulate the
        // full prefix sum of injection cycles.
        let p = sofi_workloads::fib(sofi_workloads::Variant::Baseline);
        let c = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
        let mut reversed = c.plan().experiments.clone();
        reversed.sort_unstable_by_key(|e| std::cmp::Reverse((e.coord.cycle, e.coord.bit)));

        let (mut results, stats) = c.run_experiments_stats(FaultDomain::Memory, &reversed);
        let mut naive = c.run_experiments_naive(FaultDomain::Memory, &reversed);
        results.sort_by_key(|r| r.experiment.id);
        naive.sort_by_key(|r| r.experiment.id);
        assert_eq!(results, naive);

        let from_zero_cost: u64 = reversed.iter().map(|e| e.coord.cycle - 1).sum();
        assert!(
            stats.pristine_cycles < from_zero_cost / 4,
            "checkpoint restarts should beat from-zero restarts by a wide \
             margin ({} vs {})",
            stats.pristine_cycles,
            from_zero_cost
        );
    }

    #[test]
    fn timeout_classified() {
        // A program whose loop counter lives in RAM: flipping a high bit
        // of the counter makes the loop run ~2^31 iterations → timeout.
        let mut a = Asm::with_name("loopy");
        let n = a.data_word("n", 3);
        let top_entry = a.new_label();
        a.j(top_entry);
        a.bind(top_entry);
        let top = a.label_here();
        a.lw(Reg::R1, Reg::R0, n.offset());
        a.addi(Reg::R1, Reg::R1, -1);
        a.sw(Reg::R1, Reg::R0, n.offset());
        a.bne(Reg::R1, Reg::R0, top);
        let p = a.build().unwrap();
        let c = Campaign::new(&p).unwrap();
        let r = c.run_full_defuse();
        let outcomes: Vec<Outcome> = r.results.iter().map(|x| x.outcome).collect();
        assert!(
            outcomes.contains(&Outcome::Timeout),
            "expected at least one timeout, got {outcomes:?}"
        );
    }

    #[test]
    fn detect_signal_classified_benign() {
        // A program that re-derives a corrupted value and signals the
        // correction: flips under the protected read become
        // DetectedCorrected.
        let mut a = Asm::with_name("protected");
        let x = a.data_bytes("x", &[5]);
        let ok = a.new_label();
        a.lb(Reg::R1, Reg::R0, x.offset()); // may be corrupted
        a.li(Reg::R2, 5); // recompute reference
        a.beq(Reg::R1, Reg::R2, ok);
        a.detect_signal(Reg::R2); // detected, corrected below
        a.mv(Reg::R1, Reg::R2);
        a.bind(ok);
        a.serial_out(Reg::R1);
        let p = a.build().unwrap();
        let c = Campaign::new(&p).unwrap();
        let r = c.run_full_defuse();
        assert!(r.results.iter().all(
            |res| res.outcome == Outcome::DetectedCorrected || res.outcome == Outcome::NoEffect
        ));
        assert_eq!(r.failure_weight(), 0);
    }
}
