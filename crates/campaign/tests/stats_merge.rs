//! Satellite: merging `ExecutorStats` across worker threads (and serve
//! shards) had no dedicated test. `ExecutorStats::absorb` must be
//! associative and commutative with the default as identity, because
//! worker join order and shard grouping are scheduling accidents that
//! must not leak into campaign totals.

use sofi_campaign::ExecutorStats;
use sofi_rng::{DefaultRng, Rng};

fn random_stats(rng: &mut DefaultRng) -> ExecutorStats {
    ExecutorStats {
        workers: (rng.next_u64() % 8) as usize,
        experiments: rng.next_u64() % 10_000,
        pristine_cycles: rng.next_u64() % 1_000_000,
        faulted_cycles: rng.next_u64() % 1_000_000,
        converged_early: rng.next_u64() % 10_000,
        faulted_cycles_saved: rng.next_u64() % 1_000_000,
        memo_hits: rng.next_u64() % 10_000,
        memo_misses: rng.next_u64() % 10_000,
        memoized_cycles_saved: rng.next_u64() % 1_000_000,
        gate_shards_on: rng.next_u64() % 8,
        gate_shards_off: rng.next_u64() % 8,
        store_hits: rng.next_u64() % 10_000,
    }
}

fn absorbed(a: &ExecutorStats, b: &ExecutorStats) -> ExecutorStats {
    let mut m = *a;
    m.absorb(b);
    m
}

#[test]
fn absorb_is_commutative() {
    let mut rng = DefaultRng::seed_from_u64(11);
    for round in 0..500 {
        let a = random_stats(&mut rng);
        let b = random_stats(&mut rng);
        assert_eq!(absorbed(&a, &b), absorbed(&b, &a), "round {round}");
    }
}

#[test]
fn absorb_is_associative() {
    let mut rng = DefaultRng::seed_from_u64(12);
    for round in 0..500 {
        let a = random_stats(&mut rng);
        let b = random_stats(&mut rng);
        let c = random_stats(&mut rng);
        assert_eq!(
            absorbed(&absorbed(&a, &b), &c),
            absorbed(&a, &absorbed(&b, &c)),
            "round {round}"
        );
    }
}

#[test]
fn default_is_identity() {
    let mut rng = DefaultRng::seed_from_u64(13);
    for _ in 0..100 {
        let a = random_stats(&mut rng);
        assert_eq!(absorbed(&a, &ExecutorStats::default()), a);
        assert_eq!(absorbed(&ExecutorStats::default(), &a), a);
    }
}

#[test]
fn any_shard_grouping_gives_the_same_total() {
    // Fold the same worker list left-to-right, right-to-left, and as a
    // balanced tree — exactly the shapes a thread-join loop, a serve
    // batch merge, and a divide-and-conquer merge would produce.
    let mut rng = DefaultRng::seed_from_u64(14);
    let workers: Vec<ExecutorStats> = (0..9).map(|_| random_stats(&mut rng)).collect();

    let mut left = ExecutorStats::default();
    for w in &workers {
        left.absorb(w);
    }

    let mut right = ExecutorStats::default();
    for w in workers.iter().rev() {
        right.absorb(w);
    }

    fn tree(workers: &[ExecutorStats]) -> ExecutorStats {
        match workers {
            [] => ExecutorStats::default(),
            [one] => *one,
            _ => {
                let (lo, hi) = workers.split_at(workers.len() / 2);
                absorbed(&tree(lo), &tree(hi))
            }
        }
    }

    assert_eq!(left, right);
    assert_eq!(left, tree(&workers));
}

#[test]
fn derived_rates_survive_merging() {
    // The rates are ratios of merged counters, not averages of per-shard
    // rates; a merged record must reproduce them from its own fields.
    let a = ExecutorStats {
        experiments: 10,
        converged_early: 5,
        memo_hits: 2,
        memo_misses: 8,
        ..ExecutorStats::default()
    };
    let b = ExecutorStats {
        experiments: 30,
        converged_early: 5,
        memo_hits: 8,
        memo_misses: 2,
        ..ExecutorStats::default()
    };
    let m = absorbed(&a, &b);
    assert!((m.early_termination_rate() - 0.25).abs() < 1e-12);
    assert!((m.memo_hit_rate() - 0.5).abs() < 1e-12);
}
