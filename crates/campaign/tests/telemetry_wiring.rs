//! The executor's telemetry wiring: an enabled registry collects the
//! documented histograms, spans and counters; a disabled one stays
//! empty; and neither changes campaign outcomes.

use sofi_campaign::{Campaign, CampaignConfig, FaultDomain};
use sofi_isa::{Asm, Program, Reg};
use sofi_telemetry::{names, Registry};

fn hi() -> Program {
    let mut a = Asm::with_name("hi");
    let msg = a.data_space("msg", 2);
    a.li(Reg::R1, 'H' as i32);
    a.sb(Reg::R1, Reg::R0, msg.offset());
    a.li(Reg::R1, 'i' as i32);
    a.sb(Reg::R1, Reg::R0, msg.at(1).offset());
    a.lb(Reg::R2, Reg::R0, msg.offset());
    a.serial_out(Reg::R2);
    a.lb(Reg::R2, Reg::R0, msg.at(1).offset());
    a.serial_out(Reg::R2);
    a.build().unwrap()
}

#[test]
fn enabled_registry_collects_the_documented_metrics() {
    let p = sofi_workloads::fib(sofi_workloads::Variant::Baseline);
    let config = CampaignConfig {
        telemetry: true,
        ..CampaignConfig::sequential()
    };
    let c = Campaign::with_config(&p, config).unwrap();
    assert!(c.telemetry().is_enabled());
    let (_, stats) = c.run_full_defuse_stats();
    let snap = c.telemetry().snapshot();

    // Construction spans.
    assert_eq!(snap.histogram(names::SPAN_GOLDEN_RUN_NS).unwrap().count, 1);
    assert_eq!(snap.histogram(names::SPAN_DEFUSE_NS).unwrap().count, 1);
    // One sequential shard.
    assert_eq!(snap.histogram(names::SPAN_SHARD_NS).unwrap().count, 1);

    // Per-experiment histograms: every experiment records exactly one
    // faulted-run length.
    let lens = snap.histogram(names::FAULTED_RUN_CYCLES).unwrap();
    assert_eq!(lens.count, stats.experiments);
    assert!(lens.max > 0);
    let restores = snap.histogram(names::RESTORE_DISTANCE_CYCLES).unwrap();
    assert!(restores.count >= 1, "worker start counts as a restore");

    // Memoization is on, so probes were timed and counters mirrored.
    assert!(snap.histogram(names::MEMO_PROBE_NS).unwrap().count > 0);
    assert_eq!(snap.counter(names::EXPERIMENTS), stats.experiments);
    assert_eq!(snap.counter(names::CONVERGED_EARLY), stats.converged_early);
    assert_eq!(snap.counter(names::MEMO_HITS), stats.memo_hits);
    assert_eq!(snap.counter(names::MEMO_MISSES), stats.memo_misses);
}

#[test]
fn parallel_workers_merge_into_campaign_totals() {
    let p = sofi_workloads::fib(sofi_workloads::Variant::Baseline);
    let config = CampaignConfig {
        threads: 4,
        telemetry: true,
        ..CampaignConfig::default()
    };
    let c = Campaign::with_config(&p, config).unwrap();
    let (_, stats) = c.run_full_defuse_stats();
    assert!(stats.workers > 1, "expected a parallel run");
    let snap = c.telemetry().snapshot();

    // Every worker's forked registry was absorbed: per-experiment
    // histograms and counters cover the whole campaign, one shard span
    // per worker, one merge span for the join.
    let lens = snap.histogram(names::FAULTED_RUN_CYCLES).unwrap();
    assert_eq!(lens.count, stats.experiments);
    assert_eq!(
        snap.histogram(names::SPAN_SHARD_NS).unwrap().count,
        stats.workers as u64
    );
    assert_eq!(snap.histogram(names::SPAN_MERGE_NS).unwrap().count, 1);
    assert_eq!(snap.counter(names::EXPERIMENTS), stats.experiments);
    assert_eq!(
        snap.histogram(names::RESTORE_DISTANCE_CYCLES)
            .unwrap()
            .count,
        stats.workers as u64,
        "in-order parallel run: exactly one restore (the start) per worker"
    );
}

#[test]
fn disabled_registry_stays_empty_and_outcomes_are_identical() {
    let p = hi();
    let off = Campaign::with_config(&p, CampaignConfig::sequential()).unwrap();
    assert!(!off.telemetry().is_enabled());
    let on = Campaign::with_config(
        &p,
        CampaignConfig {
            telemetry: true,
            ..CampaignConfig::sequential()
        },
    )
    .unwrap();

    let off_result = off.run_full_defuse();
    let on_result = on.run_full_defuse();
    assert_eq!(off_result, on_result, "telemetry changed outcomes");
    assert!(off.telemetry().snapshot().is_empty());
    assert!(!on.telemetry().snapshot().is_empty());
}

#[test]
fn explicit_registry_wins_over_config_flag() {
    // The daemon passes a per-job registry; it must record even though
    // the job config leaves `telemetry` off.
    let reg = Registry::enabled();
    let c =
        Campaign::with_config_telemetry(&hi(), CampaignConfig::sequential(), reg.clone()).unwrap();
    let _ = c.run_experiments_in(FaultDomain::Memory, &c.plan().experiments);
    assert!(reg.snapshot().counter(names::EXPERIMENTS) > 0);
}
