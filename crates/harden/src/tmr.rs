//! Triple modular redundancy (TMR) for single words.
//!
//! The classic alternative to SUM+DMR: three replicas, majority vote on
//! load. Slightly cheaper loads on the fast path than checksummed
//! duplication, one extra store per write, and — unlike SUM+DMR — no way
//! to distinguish "replica corrupt" from "two replicas corrupt agreeing by
//! chance" (irrelevant under the single-fault model).

use sofi_isa::{Asm, DataLabel, Reg};

/// A TMR-protected 32-bit variable: three replicas, majority vote.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_harden::TmrWord;
///
/// let mut a = Asm::with_name("demo");
/// let w = TmrWord::declare(&mut a, "w", 9);
/// w.emit_load(&mut a, Reg::R1, Reg::R2, Reg::R3);
/// a.serial_out(Reg::R1);
/// let p = a.build().unwrap();
/// # let mut m = sofi_machine::Machine::new(&p);
/// # m.run(1_000);
/// # assert_eq!(m.serial(), &[9]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmrWord {
    a: DataLabel,
    b: DataLabel,
    c: DataLabel,
}

impl TmrWord {
    /// Allocates the three replicas, initialized to `init`.
    pub fn declare(asm: &mut Asm, name: &str, init: u32) -> TmrWord {
        TmrWord {
            a: asm.data_word(format!("{name}__r0"), init),
            b: asm.data_word(format!("{name}__r1"), init),
            c: asm.data_word(format!("{name}__r2"), init),
        }
    }

    /// Address of the first replica.
    pub fn first(&self) -> DataLabel {
        self.a
    }

    /// Store to all three replicas (3 cycles, no scratch needed).
    pub fn emit_store(&self, asm: &mut Asm, src: Reg) {
        asm.sw(src, Reg::R0, self.a.offset());
        asm.sw(src, Reg::R0, self.b.offset());
        asm.sw(src, Reg::R0, self.c.offset());
    }

    /// Majority-vote load into `dst` (clobbers `s1`, `s2`). Signals a
    /// detection when outvoting a corrupt replica; aborts when all three
    /// disagree. Fast path: 3 cycles.
    pub fn emit_load(&self, asm: &mut Asm, dst: Reg, s1: Reg, s2: Reg) {
        debug_assert!(
            dst != s1 && dst != s2 && s1 != s2,
            "load registers must be distinct"
        );
        let ok = a_label(asm);
        let use_other = a_label(asm);
        let signal = a_label(asm);
        let abort = a_label(asm);

        asm.lw(dst, Reg::R0, self.a.offset());
        asm.lw(s1, Reg::R0, self.b.offset());
        asm.beq(dst, s1, ok); // replicas 0 and 1 agree
        asm.lw(s2, Reg::R0, self.c.offset());
        asm.beq(dst, s2, signal); // 0 and 2 agree → replica 1 corrupt
        asm.beq(s1, s2, use_other); // 1 and 2 agree → replica 0 corrupt
        asm.j(abort);
        asm.bind(use_other);
        asm.mv(dst, s1);
        asm.bind(signal);
        asm.detect_signal(dst);
        asm.j(ok);
        asm.bind(abort);
        asm.halt(crate::SUMDMR_ABORT_CODE);
        asm.bind(ok);
    }
}

fn a_label(asm: &mut Asm) -> sofi_isa::Label {
    asm.new_label()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::Program;
    use sofi_machine::Machine;

    fn load_and_print() -> (Program, TmrWord) {
        let mut a = Asm::with_name("tmr");
        let w = TmrWord::declare(&mut a, "w", 0x2A);
        w.emit_load(&mut a, Reg::R1, Reg::R2, Reg::R3);
        a.serial_out(Reg::R1);
        (a.build().unwrap(), w)
    }

    #[test]
    fn clean_load() {
        let (p, _) = load_and_print();
        let mut m = Machine::new(&p);
        assert!(m.run(1_000).is_clean_halt());
        assert_eq!(m.serial(), &[0x2A]);
    }

    #[test]
    fn any_single_replica_corruption_is_outvoted() {
        let (p, w) = load_and_print();
        let base = w.first().addr() as u64 * 8;
        for replica in 0..3u64 {
            for bit in [0, 15, 31] {
                let mut m = Machine::new(&p);
                m.flip_bit(base + replica * 32 + bit);
                m.run(1_000);
                assert_eq!(m.serial(), &[0x2A], "replica {replica} bit {bit}");
                // Replicas 0/1 force the vote path (detected); a corrupt
                // replica 2 is masked by the fast path without a signal.
                let expected_detects = u64::from(replica < 2);
                assert_eq!(m.detect_count(), expected_detects);
            }
        }
    }

    #[test]
    fn store_updates_all_replicas() {
        let mut a = Asm::with_name("tmr-store");
        let w = TmrWord::declare(&mut a, "w", 0);
        a.li(Reg::R1, 77);
        w.emit_store(&mut a, Reg::R1);
        w.emit_load(&mut a, Reg::R4, Reg::R2, Reg::R3);
        a.serial_out(Reg::R4);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(1_000);
        assert_eq!(m.serial(), &[77]);
        assert_eq!(m.detect_count(), 0);
    }

    #[test]
    fn triple_disagreement_aborts() {
        let (p, w) = load_and_print();
        let base = w.first().addr() as u64 * 8;
        let mut m = Machine::new(&p);
        m.flip_bit(base); // replica 0
        m.flip_bit(base + 33); // replica 1, different bit
        m.run(1_000);
        assert_eq!(
            m.status(),
            Some(sofi_machine::RunStatus::Halted {
                code: crate::SUMDMR_ABORT_CODE
            })
        );
    }
}
