//! SUM+DMR: checksummed duplication of critical data.
//!
//! The real-world mechanism the paper evaluates (from its reference \[8])
//! protects "critical data with long lifetimes" by storing a checksum and
//! a duplicate alongside each protected object, verifying on access,
//! correcting from the redundant copy when the checksum identifies the
//! corrupt replica, and failing stop when it cannot.
//!
//! [`ProtectedWord`] is the word-granular variant used by the hardened
//! workload builds: each protected 32-bit value occupies three words —
//! primary, duplicate, and checksum (two's-complement negation, so
//! checksum generation and verification are single `sub` instructions).

use sofi_isa::{Asm, DataLabel, Reg};

/// Halt code used by SUM+DMR when corruption is detected but no replica
/// can be vouched for (matches `sofi_campaign::ABORT_CODE`).
pub const SUMDMR_ABORT_CODE: u16 = 0xDE;

/// A SUM+DMR-protected 32-bit variable: primary + duplicate + checksum.
///
/// All emitters use only the registers the caller passes in, making the
/// protection composable with any surrounding register allocation.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_harden::ProtectedWord;
///
/// let mut a = Asm::with_name("demo");
/// let counter = ProtectedWord::declare(&mut a, "counter", 41);
/// counter.emit_load(&mut a, Reg::R1, Reg::R2, Reg::R3);
/// a.addi(Reg::R1, Reg::R1, 1);
/// counter.emit_store(&mut a, Reg::R1, Reg::R2);
/// counter.emit_load(&mut a, Reg::R4, Reg::R2, Reg::R3);
/// a.serial_out(Reg::R4);
/// let p = a.build().unwrap();
/// # let mut m = sofi_machine::Machine::new(&p);
/// # m.run(1_000);
/// # assert_eq!(m.serial(), &[42]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectedWord {
    prim: DataLabel,
    copy: DataLabel,
    sum: DataLabel,
}

impl ProtectedWord {
    /// Allocates the three backing words in the data section, initialized
    /// consistently to `init`.
    pub fn declare(a: &mut Asm, name: &str, init: u32) -> ProtectedWord {
        let prim = a.data_word(format!("{name}__prim"), init);
        let copy = a.data_word(format!("{name}__copy"), init);
        let sum = a.data_word(format!("{name}__sum"), init.wrapping_neg());
        ProtectedWord { prim, copy, sum }
    }

    /// Address of the primary replica (for diagnostics/reports).
    pub fn primary(&self) -> DataLabel {
        self.prim
    }

    /// Protected store: writes `src` to both replicas and refreshes the
    /// checksum. Clobbers `scratch`. Costs 4 cycles.
    pub fn emit_store(&self, a: &mut Asm, src: Reg, scratch: Reg) {
        debug_assert_ne!(src, scratch, "store scratch must differ from src");
        a.sw(src, Reg::R0, self.prim.offset());
        a.sw(src, Reg::R0, self.copy.offset());
        a.sub(scratch, Reg::R0, src); // checksum = -value
        a.sw(scratch, Reg::R0, self.sum.offset());
    }

    /// Protected load: reads both replicas; on mismatch consults the
    /// checksum, takes the replica it vouches for, signals the correction,
    /// and aborts fail-stop ([`SUMDMR_ABORT_CODE`]) if neither replica
    /// matches. Leaves the value in `dst`; clobbers `s1` and `s2`.
    ///
    /// Fast path (no corruption): 3 cycles.
    pub fn emit_load(&self, a: &mut Asm, dst: Reg, s1: Reg, s2: Reg) {
        debug_assert!(
            dst != s1 && dst != s2 && s1 != s2,
            "load registers must be distinct"
        );
        let ok = a.new_label();
        let use_copy = a.new_label();
        let signal = a.new_label();
        let abort = a.new_label();

        a.lw(dst, Reg::R0, self.prim.offset());
        a.lw(s1, Reg::R0, self.copy.offset());
        a.beq(dst, s1, ok); // fast path
        a.lw(s2, Reg::R0, self.sum.offset());
        a.sub(s2, Reg::R0, s2); // candidate value per checksum
        a.beq(s1, s2, use_copy); // duplicate verified → primary was corrupt
        a.bne(dst, s2, abort); // primary unverified too → fail-stop
        a.j(signal); // primary verified (dst already holds it)
        a.bind(use_copy);
        a.mv(dst, s1);
        a.bind(signal);
        a.detect_signal(dst);
        a.j(ok);
        a.bind(abort);
        a.halt(SUMDMR_ABORT_CODE);
        a.bind(ok);
    }

    /// Scrub pass: verifies replicas *and* checksum, repairs any single
    /// corruption (signalling it), and aborts when unrecoverable. Used by
    /// hardened workloads that periodically sweep their protected state.
    /// Clean-path cost: 6 cycles per word. Clobbers all three registers.
    pub fn emit_scrub(&self, a: &mut Asm, s0: Reg, s1: Reg, s2: Reg) {
        let ok = a.new_label();
        let use_copy = a.new_label();
        let repair = a.new_label();
        let abort = a.new_label();
        let diverged = a.new_label();

        a.lw(s0, Reg::R0, self.prim.offset());
        a.lw(s1, Reg::R0, self.copy.offset());
        a.bne(s0, s1, diverged);
        // Replicas agree; verify (and if needed rebuild) the checksum so a
        // corrupted sum cannot linger and mislead a later correction.
        a.lw(s2, Reg::R0, self.sum.offset());
        a.sub(s2, Reg::R0, s2);
        a.beq(s0, s2, ok);
        a.sub(s1, Reg::R0, s0);
        a.sw(s1, Reg::R0, self.sum.offset());
        a.detect_signal(s0);
        a.j(ok);

        a.bind(diverged);
        a.lw(s2, Reg::R0, self.sum.offset());
        a.sub(s2, Reg::R0, s2);
        a.beq(s1, s2, use_copy);
        a.bne(s0, s2, abort);
        a.j(repair); // primary good: s0 holds the value
        a.bind(use_copy);
        a.mv(s0, s1);
        a.bind(repair);
        // Write the vouched-for value back to both replicas + checksum.
        a.sw(s0, Reg::R0, self.prim.offset());
        a.sw(s0, Reg::R0, self.copy.offset());
        a.sub(s1, Reg::R0, s0);
        a.sw(s1, Reg::R0, self.sum.offset());
        a.detect_signal(s0);
        a.j(ok);
        a.bind(abort);
        a.halt(SUMDMR_ABORT_CODE);
        a.bind(ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::Program;
    use sofi_machine::{Machine, RunStatus};

    /// Builds: load protected word, emit low byte on serial.
    fn load_and_print() -> (Program, ProtectedWord) {
        let mut a = Asm::with_name("pw");
        let w = ProtectedWord::declare(&mut a, "w", 0x61);
        w.emit_load(&mut a, Reg::R1, Reg::R2, Reg::R3);
        a.serial_out(Reg::R1);
        (a.build().unwrap(), w)
    }

    #[test]
    fn clean_run_prints_value() {
        let (p, _) = load_and_print();
        let mut m = Machine::new(&p);
        assert!(m.run(1_000).is_clean_halt());
        assert_eq!(m.serial(), &[0x61]);
        assert_eq!(m.detect_count(), 0);
    }

    fn run_with_flip(p: &Program, bit: u64) -> Machine {
        let mut m = Machine::new(p);
        m.flip_bit(bit); // corrupt before the first instruction
        m.run(1_000);
        m
    }

    #[test]
    fn primary_corruption_corrected() {
        let (p, w) = load_and_print();
        for bit_in_word in 0..32 {
            let m = run_with_flip(&p, w.primary().addr() as u64 * 8 + bit_in_word);
            assert_eq!(m.status(), Some(RunStatus::Halted { code: 0 }));
            assert_eq!(m.serial(), &[0x61], "bit {bit_in_word}");
            assert_eq!(m.detect_count(), 1);
        }
    }

    #[test]
    fn copy_corruption_corrected() {
        let (p, w) = load_and_print();
        let copy_bit0 = (w.primary().addr() + 4) as u64 * 8;
        for off in [0, 7, 13, 31] {
            let m = run_with_flip(&p, copy_bit0 + off);
            assert_eq!(m.serial(), &[0x61]);
            assert_eq!(m.detect_count(), 1);
        }
    }

    #[test]
    fn sum_corruption_is_dormant_on_clean_replicas() {
        let (p, w) = load_and_print();
        let sum_bit0 = (w.primary().addr() + 8) as u64 * 8;
        let m = run_with_flip(&p, sum_bit0 + 5);
        assert_eq!(m.serial(), &[0x61]);
        assert_eq!(m.detect_count(), 0); // load fast path never consults it
    }

    #[test]
    fn scrub_repairs_corrupted_checksum() {
        let mut a = Asm::with_name("scrub-sum");
        let w = ProtectedWord::declare(&mut a, "w", 7);
        w.emit_scrub(&mut a, Reg::R1, Reg::R2, Reg::R3);
        // The checksum word must be consistent again after the scrub.
        a.lw(Reg::R4, Reg::R0, w.primary().at(8).offset());
        a.sub(Reg::R4, Reg::R0, Reg::R4);
        a.serial_out(Reg::R4); // -(-7) = 7
        let p = a.build().unwrap();
        let m = run_with_flip(&p, (w.primary().addr() + 8) as u64 * 8 + 2);
        assert_eq!(m.serial(), &[7]);
        assert_eq!(m.detect_count(), 1);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut a = Asm::with_name("rt");
        let w = ProtectedWord::declare(&mut a, "w", 0);
        a.li(Reg::R1, 0x1234_5678);
        w.emit_store(&mut a, Reg::R1, Reg::R2);
        w.emit_load(&mut a, Reg::R4, Reg::R2, Reg::R3);
        a.xor(Reg::R5, Reg::R4, Reg::R1);
        let fail = a.new_label();
        a.bne(Reg::R5, Reg::R0, fail);
        a.li(Reg::R6, b'Y' as i32);
        a.serial_out(Reg::R6);
        a.halt(0);
        a.bind(fail);
        a.halt(1);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        assert!(m.run(1_000).is_clean_halt());
        assert_eq!(m.serial(), b"Y");
    }

    #[test]
    fn scrub_repairs_replicas() {
        let mut a = Asm::with_name("scrub");
        let w = ProtectedWord::declare(&mut a, "w", 7);
        w.emit_scrub(&mut a, Reg::R1, Reg::R2, Reg::R3);
        // After the scrub, a plain unprotected load of the primary must
        // already see the repaired value.
        a.lw(Reg::R4, Reg::R0, w.primary().offset());
        a.serial_out(Reg::R4);
        let p = a.build().unwrap();
        let m = run_with_flip(&p, w.primary().addr() as u64 * 8 + 4); // 7 → 23
        assert_eq!(m.serial(), &[7]);
        assert_eq!(m.detect_count(), 1);
    }

    #[test]
    fn double_corruption_fails_stop() {
        // Corrupt primary AND checksum consistently cannot happen with a
        // single flip; simulate the unrecoverable case by flipping primary
        // and copy to two different wrong values.
        let (p, w) = load_and_print();
        let mut m = Machine::new(&p);
        m.flip_bit(w.primary().addr() as u64 * 8); // primary bit 0
        m.flip_bit((w.primary().addr() + 4) as u64 * 8 + 1); // copy bit 1
        m.run(1_000);
        assert_eq!(
            m.status(),
            Some(RunStatus::Halted {
                code: SUMDMR_ABORT_CODE
            })
        );
    }
}
