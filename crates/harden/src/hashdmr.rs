//! Hash-verified duplication: DMR with an ALU-heavy signature.
//!
//! A second flavour of the SUM+DMR family: instead of the single-`sub`
//! checksum of [`crate::ProtectedWord`], the "SUM" is a multi-round mixing
//! hash computed in registers. Integrity checking therefore costs many
//! *ALU* cycles but few extra *memory reads* — the cost profile of
//! signature-based protection libraries that recompute checksums on every
//! access. (For fault-space analysis the distinction matters: runtime
//! grows without adding equivalently many def/use read classes.)

use sofi_isa::{Asm, DataLabel, Reg};

/// Mixing rounds of the signature hash (each round ≈ 5 instructions).
const HASH_ROUNDS: usize = 6;
/// Multiplicative mixing constant (from the finalizer of MurmurHash3).
const MIX: i32 = 0x045D_9F3B_u32 as i32;
/// Initial whitening constant (golden-ratio), so 0 is not a fixed point.
const SEED: i32 = 0x9E37_79B9u32 as i32;

/// Emits `dst = H(src)` (clobbers `tmp`; `dst`, `src`, `tmp` distinct).
fn emit_hash(a: &mut Asm, dst: Reg, src: Reg, tmp: Reg) {
    debug_assert!(dst != src && dst != tmp && src != tmp);
    a.li(tmp, SEED);
    a.xor(dst, src, tmp);
    for round in 0..HASH_ROUNDS {
        let shift = [16u8, 13, 17, 11, 15, 14][round % 6];
        a.srli(tmp, dst, shift);
        a.xor(dst, dst, tmp);
        a.li(tmp, MIX);
        a.mul(dst, dst, tmp);
    }
}

/// A hash-DMR-protected 32-bit variable: primary + duplicate + signature.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_harden::HashDmrWord;
///
/// let mut a = Asm::with_name("demo");
/// let w = HashDmrWord::declare(&mut a, "w", 5);
/// w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2, Reg::R3);
/// a.serial_out(Reg::R4);
/// let p = a.build().unwrap();
/// # let mut m = sofi_machine::Machine::new(&p);
/// # m.run(10_000);
/// # assert_eq!(m.serial(), &[5]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashDmrWord {
    prim: DataLabel,
    copy: DataLabel,
    sig: DataLabel,
}

impl HashDmrWord {
    /// Software model of the signature hash (for initialization and
    /// tests).
    pub fn hash(v: u32) -> u32 {
        let mut h = v ^ SEED as u32;
        for round in 0..HASH_ROUNDS {
            let shift = [16u32, 13, 17, 11, 15, 14][round % 6];
            h ^= h >> shift;
            h = h.wrapping_mul(MIX as u32);
        }
        h
    }

    /// Allocates primary, duplicate and signature words, initialized
    /// consistently to `init`.
    pub fn declare(a: &mut Asm, name: &str, init: u32) -> HashDmrWord {
        HashDmrWord {
            prim: a.data_word(format!("{name}__prim"), init),
            copy: a.data_word(format!("{name}__copy"), init),
            sig: a.data_word(format!("{name}__sig"), Self::hash(init)),
        }
    }

    /// Address of the primary replica.
    pub fn primary(&self) -> DataLabel {
        self.prim
    }

    /// Protected store: writes both replicas and the recomputed
    /// signature. Clobbers `s1`, `s2`.
    pub fn emit_store(&self, a: &mut Asm, src: Reg, s1: Reg, s2: Reg) {
        a.sw(src, Reg::R0, self.prim.offset());
        a.sw(src, Reg::R0, self.copy.offset());
        emit_hash(a, s1, src, s2);
        a.sw(s1, Reg::R0, self.sig.offset());
    }

    /// Protected load: verifies the primary against the signature; on
    /// mismatch verifies the duplicate, corrects from it (signalling), and
    /// aborts fail-stop when neither replica matches. Leaves the value in
    /// `dst`; clobbers all three scratches.
    pub fn emit_load(&self, a: &mut Asm, dst: Reg, s1: Reg, s2: Reg, s3: Reg) {
        let ok = a.new_label();
        let try_copy = a.new_label();
        let abort = a.new_label();

        a.lw(dst, Reg::R0, self.prim.offset());
        a.lw(s1, Reg::R0, self.sig.offset());
        emit_hash(a, s2, dst, s3);
        a.bne(s2, s1, try_copy);
        a.j(ok);

        a.bind(try_copy);
        a.lw(dst, Reg::R0, self.copy.offset());
        emit_hash(a, s2, dst, s3);
        a.bne(s2, s1, abort);
        // Duplicate verified: repair the primary and signal.
        a.sw(dst, Reg::R0, self.prim.offset());
        a.detect_signal(dst);
        a.j(ok);

        a.bind(abort);
        a.halt(crate::SUMDMR_ABORT_CODE);
        a.bind(ok);
    }

    /// Scrub pass: verifies both replicas against the signature and
    /// repairs whichever single word (replica or signature) diverges,
    /// signalling any correction; aborts when unrecoverable. Clobbers all
    /// four registers.
    pub fn emit_scrub(&self, a: &mut Asm, s0: Reg, s1: Reg, s2: Reg, s3: Reg) {
        let ok = a.new_label();
        let diverged = a.new_label();
        let fix_from_prim = a.new_label();
        let fix_from_copy = a.new_label();
        let abort = a.new_label();

        a.lw(s0, Reg::R0, self.prim.offset());
        a.lw(s1, Reg::R0, self.copy.offset());
        a.bne(s0, s1, diverged);
        // Replicas agree: check the signature; rebuild it if stale.
        a.lw(s2, Reg::R0, self.sig.offset());
        emit_hash(a, s3, s0, s1);
        a.beq(s3, s2, ok);
        a.sw(s3, Reg::R0, self.sig.offset());
        a.detect_signal(s0);
        a.j(ok);

        // Replicas diverge: the signature arbitrates.
        a.bind(diverged);
        a.lw(s2, Reg::R0, self.sig.offset());
        emit_hash(a, s3, s0, s1);
        a.beq(s3, s2, fix_from_prim);
        a.lw(s1, Reg::R0, self.copy.offset());
        emit_hash(a, s3, s1, s0);
        a.beq(s3, s2, fix_from_copy);
        a.j(abort);

        a.bind(fix_from_prim);
        a.lw(s0, Reg::R0, self.prim.offset());
        a.sw(s0, Reg::R0, self.copy.offset());
        a.detect_signal(s0);
        a.j(ok);

        a.bind(fix_from_copy);
        a.sw(s1, Reg::R0, self.prim.offset());
        a.detect_signal(s1);
        a.j(ok);

        a.bind(abort);
        a.halt(crate::SUMDMR_ABORT_CODE);
        a.bind(ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::Program;
    use sofi_machine::{Machine, RunStatus};

    fn load_and_print() -> (Program, HashDmrWord) {
        let mut a = Asm::with_name("hdw");
        let w = HashDmrWord::declare(&mut a, "w", 0x77);
        w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2, Reg::R3);
        a.serial_out(Reg::R4);
        (a.build().unwrap(), w)
    }

    #[test]
    fn hash_model_is_nontrivial() {
        assert_ne!(HashDmrWord::hash(0), 0x0);
        assert_ne!(HashDmrWord::hash(1), HashDmrWord::hash(2));
    }

    #[test]
    fn clean_load_is_silent() {
        let (p, _) = load_and_print();
        let mut m = Machine::new(&p);
        assert!(m.run(10_000).is_clean_halt());
        assert_eq!(m.serial(), &[0x77]);
        assert_eq!(m.detect_count(), 0);
    }

    #[test]
    fn primary_corruption_corrected_from_copy() {
        let (p, w) = load_and_print();
        for bit in [0, 9, 31] {
            let mut m = Machine::new(&p);
            m.flip_bit(w.primary().addr() as u64 * 8 + bit);
            m.run(10_000);
            assert_eq!(m.serial(), &[0x77], "bit {bit}");
            assert_eq!(m.detect_count(), 1);
        }
    }

    #[test]
    fn copy_corruption_is_dormant_on_load() {
        // Loads verify the primary first; a corrupt duplicate goes
        // unnoticed until a scrub or a correction needs it.
        let (p, w) = load_and_print();
        let mut m = Machine::new(&p);
        m.flip_bit((w.primary().addr() + 4) as u64 * 8 + 3);
        m.run(10_000);
        assert_eq!(m.serial(), &[0x77]);
        assert_eq!(m.detect_count(), 0);
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut a = Asm::with_name("rt");
        let w = HashDmrWord::declare(&mut a, "w", 0);
        a.li(Reg::R5, 0x0BAD_F00D_u32 as i32);
        w.emit_store(&mut a, Reg::R5, Reg::R1, Reg::R2);
        w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2, Reg::R3);
        a.xor(Reg::R6, Reg::R4, Reg::R5);
        let bad = a.new_label();
        a.bne(Reg::R6, Reg::R0, bad);
        a.li(Reg::R7, 1);
        a.serial_out(Reg::R7);
        a.halt(0);
        a.bind(bad);
        a.halt(1);
        let mut m = Machine::new(&a.build().unwrap());
        assert!(m.run(10_000).is_clean_halt());
        assert_eq!(m.serial(), &[1]);
    }

    #[test]
    fn scrub_repairs_each_single_corruption() {
        for word in 0..3u32 {
            let mut a = Asm::with_name("scrub");
            let w = HashDmrWord::declare(&mut a, "w", 0xAB);
            w.emit_scrub(&mut a, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
            w.emit_load(&mut a, Reg::R5, Reg::R1, Reg::R2, Reg::R3);
            a.serial_out(Reg::R5);
            let p = a.build().unwrap();
            let mut m = Machine::new(&p);
            m.flip_bit((w.primary().addr() + 4 * word) as u64 * 8 + 6);
            m.run(10_000);
            assert_eq!(
                m.status(),
                Some(RunStatus::Halted { code: 0 }),
                "word {word}"
            );
            assert_eq!(m.serial(), &[0xAB], "word {word}");
            assert_eq!(m.detect_count(), 1, "word {word}");
        }
    }

    #[test]
    fn double_corruption_aborts() {
        let (p, w) = load_and_print();
        let mut m = Machine::new(&p);
        m.flip_bit(w.primary().addr() as u64 * 8);
        m.flip_bit((w.primary().addr() + 4) as u64 * 8 + 1);
        m.run(10_000);
        assert_eq!(
            m.status(),
            Some(RunStatus::Halted {
                code: crate::SUMDMR_ABORT_CODE
            })
        );
    }
}
