#![warn(missing_docs)]

//! Software-implemented hardware fault-tolerance mechanisms.
//!
//! Two families of program transformations:
//!
//! * **Real protection** — [`ProtectedWord`] (checksummed duplication,
//!   the paper's "SUM+DMR" class of mechanisms from \[8]) and [`TmrWord`]
//!   (triple modular redundancy with majority vote). Both detect
//!   corruption of protected data on access, correct it when possible
//!   (signalling the benign `Detected & Corrected` outcome), and abort
//!   fail-stop when not.
//!
//! * **Fake protection** — the paper's §IV "Dilution Fault Tolerance":
//!   [`nop_dilution`] (DFT) pads runtime with NOPs, [`load_dilution`]
//!   (DFT′) pads it with discarded memory reads, [`memory_dilution`] pads
//!   the address space. None of them removes a single failure, yet all of
//!   them *raise the fault-coverage factor* — the Fault-Space Dilution
//!   Delusion that makes coverage unusable for comparing programs.
//!
//! # Examples
//!
//! ```
//! use sofi_isa::{Asm, Reg};
//! use sofi_harden::nop_dilution;
//!
//! let mut a = Asm::with_name("base");
//! let x = a.data_bytes("x", &[1]);
//! a.lb(Reg::R1, Reg::R0, x.offset());
//! a.serial_out(Reg::R1);
//! let base = a.build()?;
//!
//! let diluted = nop_dilution(&base, 4);
//! assert_eq!(diluted.insts.len(), base.insts.len() + 4);
//! assert_eq!(diluted.name, "base+dft4");
//! # Ok::<(), sofi_isa::AsmError>(())
//! ```

mod dilution;
mod hashdmr;
mod shield;
mod sumdmr;
mod tmr;

pub use dilution::{load_dilution, memory_dilution, nop_dilution, nop_dilution_tail};
pub use hashdmr::HashDmrWord;
pub use shield::Shield;
pub use sumdmr::{ProtectedWord, SUMDMR_ABORT_CODE};
pub use tmr::TmrWord;
