//! Uniform access to a word that may or may not be protected.
//!
//! Benchmark generators emit baseline and hardened variants from the same
//! code path; [`Shield`] lets them declare a word once and get either a
//! plain RAM word or a SUM+DMR-protected one depending on the build.

use crate::sumdmr::ProtectedWord;
use sofi_isa::{Asm, DataLabel, Reg};

/// A 32-bit variable that is either plain or SUM+DMR-protected.
///
/// # Examples
///
/// ```
/// use sofi_isa::{Asm, Reg};
/// use sofi_harden::Shield;
///
/// let mut a = Asm::with_name("demo");
/// let w = Shield::declare(&mut a, "w", 3, true);
/// w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2);
/// a.serial_out(Reg::R4);
/// let p = a.build().unwrap();
/// # let mut m = sofi_machine::Machine::new(&p);
/// # m.run(1_000);
/// # assert_eq!(m.serial(), &[3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shield {
    /// An unprotected word.
    Plain(DataLabel),
    /// A checksummed-duplicated word.
    SumDmr(ProtectedWord),
}

impl Shield {
    /// Declares the word, protected iff `protected`.
    pub fn declare(a: &mut Asm, name: &str, init: u32, protected: bool) -> Shield {
        if protected {
            Shield::SumDmr(ProtectedWord::declare(a, name, init))
        } else {
            Shield::Plain(a.data_word(name, init))
        }
    }

    /// Loads the value into `dst`. Clobbers `s1` and `s2` when protected.
    /// `dst`, `s1`, `s2` must be pairwise distinct.
    pub fn emit_load(&self, a: &mut Asm, dst: Reg, s1: Reg, s2: Reg) {
        match self {
            Shield::Plain(l) => {
                a.lw(dst, Reg::R0, l.offset());
            }
            Shield::SumDmr(p) => p.emit_load(a, dst, s1, s2),
        }
    }

    /// Stores `src`. Clobbers `s1` when protected; `src != s1`.
    pub fn emit_store(&self, a: &mut Asm, src: Reg, s1: Reg) {
        match self {
            Shield::Plain(l) => {
                a.sw(src, Reg::R0, l.offset());
            }
            Shield::SumDmr(p) => p.emit_store(a, src, s1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_machine::Machine;

    fn round_trip(protected: bool) -> Vec<u8> {
        let mut a = Asm::with_name("shield");
        let w = Shield::declare(&mut a, "w", 10, protected);
        w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2);
        a.addi(Reg::R4, Reg::R4, 5);
        w.emit_store(&mut a, Reg::R4, Reg::R1);
        w.emit_load(&mut a, Reg::R5, Reg::R1, Reg::R2);
        a.serial_out(Reg::R5);
        let mut m = Machine::new(&a.build().unwrap());
        assert!(m.run(1_000).is_clean_halt());
        m.serial().to_vec()
    }

    #[test]
    fn plain_and_protected_agree() {
        assert_eq!(round_trip(false), vec![15]);
        assert_eq!(round_trip(true), vec![15]);
    }

    #[test]
    fn protected_corrects_flips() {
        let mut a = Asm::with_name("shield");
        let w = Shield::declare(&mut a, "w", 9, true);
        w.emit_load(&mut a, Reg::R4, Reg::R1, Reg::R2);
        a.serial_out(Reg::R4);
        let p = a.build().unwrap();
        let mut m = Machine::new(&p);
        m.flip_bit(1); // primary replica, bit 1
        m.run(1_000);
        assert_eq!(m.serial(), &[9]);
        assert_eq!(m.detect_count(), 1);
    }
}
