//! "Dilution Fault Tolerance" — the paper's §IV benchmarking cheat.
//!
//! These transformations change a benchmark's fault-space size without
//! changing its behaviour or failure count. Applied before a
//! coverage-based evaluation they make any program look arbitrarily more
//! "fault tolerant" (coverage → 100 % as padding → ∞), which is exactly
//! why §IV abolishes the coverage metric for program comparison.

use sofi_isa::{Inst, Program, Reg};

/// DFT: prepends `n` NOP instructions (§IV-B). Runtime grows by `n`
/// cycles, the added fault-space columns are all trivially benign, and
/// the absolute failure count is unchanged.
pub fn nop_dilution(program: &Program, n: usize) -> Program {
    let mut p = program.clone();
    p.prepend_insts(vec![Inst::NOP; n]);
    p.name = format!("{}+dft{n}", program.name);
    p
}

/// DFT′: prepends `n` *loads* that read RAM and discard the result
/// (destination `r0`). Defeats the "only count activated faults"
/// objection: every added coordinate is genuinely activated — loaded into
/// the CPU — and still never affects the output (§IV-B).
///
/// The loads cycle through `addrs` (byte loads, so any in-RAM address is
/// valid).
///
/// # Panics
///
/// Panics if `addrs` is empty or contains an address outside RAM.
pub fn load_dilution(program: &Program, n: usize, addrs: &[u32]) -> Program {
    assert!(!addrs.is_empty(), "load dilution needs target addresses");
    for &a in addrs {
        assert!(
            a < program.ram_size,
            "dilution address {a} outside RAM ({} bytes)",
            program.ram_size
        );
        assert!(
            a <= i16::MAX as u32,
            "dilution address {a} not directly addressable"
        );
    }
    let mut p = program.clone();
    let loads: Vec<Inst> = (0..n)
        .map(|i| Inst::Load {
            rd: Reg::R0, // architecturally discarded, but the read happens
            base: Reg::R0,
            offset: addrs[i % addrs.len()] as i16,
            width: sofi_isa::MemWidth::Byte,
            signed: false,
        })
        .collect();
    p.prepend_insts(loads);
    p.name = format!("{}+dft'{n}", program.name);
    p
}

/// Tail DFT: appends `n` NOPs after the program's last instruction (the
/// machine executes them before running off the end of ROM).
///
/// Unlike [`nop_dilution`], this is failure-count-invariant for *every*
/// program: the appended cycles lie after each bit's last access, so every
/// added coordinate is a never-read (dormant) fault. Front-padding, by
/// contrast, genuinely *increases* the absolute failure count of programs
/// whose `.data` image is live at entry — the boot-initialized data sits
/// exposed for `n` extra cycles before its first read. (The paper's "Hi"
/// example stores its data at runtime, so there the distinction is
/// invisible.) Either way the *coverage* rises, which is the delusion.
pub fn nop_dilution_tail(program: &Program, n: usize) -> Program {
    let mut p = program.clone();
    // Route every normal termination through the appended NOP block:
    // `halt 0` becomes a jump to the block, and falling off the old ROM
    // end now falls into it. Abnormal halts (nonzero codes) stay put.
    let block = p.insts.len() as u32;
    for inst in &mut p.insts {
        if *inst == (Inst::Halt { code: 0 }) {
            *inst = Inst::Jal {
                rd: Reg::R0,
                target: block,
            };
        }
    }
    p.insts.extend(std::iter::repeat_n(Inst::NOP, n));
    p.insts.push(Inst::Halt { code: 0 });
    p.name = format!("{}+dft-tail{n}", program.name);
    p
}

/// Memory-axis dilution: grows RAM by `extra_bytes` of never-touched
/// memory. The fault space widens by `extra_bytes · 8` all-benign columns;
/// behaviour and failure count are unchanged (§IV-C notes the DFT "could
/// also simply have used more memory").
pub fn memory_dilution(program: &Program, extra_bytes: u32) -> Program {
    let mut p = program.clone();
    p.grow_ram(program.ram_size + extra_bytes);
    p.name = format!("{}+mem{extra_bytes}", program.name);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofi_isa::{Asm, Reg};
    use sofi_machine::{Machine, RunStatus};

    fn base() -> Program {
        let mut a = Asm::with_name("base");
        let msg = a.data_bytes("msg", b"Z");
        a.lb(Reg::R1, Reg::R0, msg.offset());
        a.serial_out(Reg::R1);
        a.build().unwrap()
    }

    fn run(p: &Program) -> (Vec<u8>, u64, RunStatus) {
        let mut m = Machine::new(p);
        let s = m.run(10_000);
        (m.serial().to_vec(), m.cycle(), s)
    }

    #[test]
    fn nop_dilution_preserves_behaviour() {
        let b = base();
        let d = nop_dilution(&b, 10);
        let (out_b, cyc_b, st_b) = run(&b);
        let (out_d, cyc_d, st_d) = run(&d);
        assert_eq!(out_b, out_d);
        assert_eq!(st_b, st_d);
        assert_eq!(cyc_d, cyc_b + 10);
    }

    #[test]
    fn load_dilution_preserves_behaviour() {
        let b = base();
        let d = load_dilution(&b, 7, &[0]);
        let (out_b, _, _) = run(&b);
        let (out_d, cyc_d, st_d) = run(&d);
        assert_eq!(out_b, out_d);
        assert!(st_d.is_clean_halt());
        assert_eq!(cyc_d, 2 + 7);
    }

    #[test]
    fn memory_dilution_only_grows_ram() {
        let b = base();
        let d = memory_dilution(&b, 100);
        assert_eq!(d.ram_size, b.ram_size + 100);
        let (out_b, cyc_b, _) = run(&b);
        let (out_d, cyc_d, _) = run(&d);
        assert_eq!(out_b, out_d);
        assert_eq!(cyc_b, cyc_d);
    }

    #[test]
    fn tail_dilution_preserves_behaviour() {
        let b = base();
        let d = nop_dilution_tail(&b, 9);
        let (out_b, cyc_b, _) = run(&b);
        let (out_d, cyc_d, st_d) = run(&d);
        assert_eq!(out_b, out_d);
        assert!(st_d.is_clean_halt());
        // 9 NOPs plus the explicit terminal halt.
        assert_eq!(cyc_d, cyc_b + 10);
        // No relocation happened: the original instructions are a prefix.
        assert_eq!(&d.insts[..b.insts.len()], &b.insts[..]);
    }

    #[test]
    fn tail_dilution_reroutes_explicit_halts() {
        let mut a = Asm::with_name("halting");
        let x = a.data_bytes("x", &[3]);
        a.lb(Reg::R1, Reg::R0, x.offset());
        a.serial_out(Reg::R1);
        a.halt(0);
        let b = a.build().unwrap();
        let d = nop_dilution_tail(&b, 5);
        let (out_b, cyc_b, _) = run(&b);
        let (out_d, cyc_d, st_d) = run(&d);
        assert_eq!(out_b, out_d);
        assert!(st_d.is_clean_halt());
        // halt → jal (1 cycle) + 5 NOPs + new halt (1 cycle).
        assert_eq!(cyc_d, cyc_b + 6);
    }

    #[test]
    fn zero_dilution_is_identity_except_name() {
        let b = base();
        let d = nop_dilution(&b, 0);
        assert_eq!(d.insts, b.insts);
    }

    #[test]
    #[should_panic(expected = "outside RAM")]
    fn load_dilution_checks_addresses() {
        load_dilution(&base(), 1, &[99]);
    }

    #[test]
    fn dilution_relocates_control_flow() {
        // A program with an absolute jump keeps working after dilution.
        let mut a = Asm::with_name("jumpy");
        let x = a.data_bytes("x", &[5]);
        let skip = a.new_label();
        a.j(skip);
        a.halt(9); // must be skipped
        a.bind(skip);
        a.lb(Reg::R1, Reg::R0, x.offset());
        a.serial_out(Reg::R1);
        let b = a.build().unwrap();
        let d = nop_dilution(&b, 3);
        let (out, _, st) = run(&d);
        assert_eq!(out, vec![5]);
        assert!(st.is_clean_halt());
    }
}
